// SPLASH-2 Radiosity analog (paper §V.D, Figs. 9-14).
//
// What matters for the paper's findings is Radiosity's locking structure,
// which this workload reproduces:
//   - per-thread task queues tq[i], each guarded by tq[i].qlock; both the
//     enqueue and the dequeue take the queue's single lock;
//   - every iteration's task batch is seeded into tq[0] — queue 0 is the
//     hub all threads fetch from, and idle threads re-poll it (an empty
//     dequeue still takes the lock). With a fixed problem size, raising
//     the thread count multiplies the fetch/poll pressure on tq[0].qlock,
//     which saturates — the tq[0].qlock blow-up of Fig. 9;
//   - spawned refinement children go to the spawning thread's own queue
//     (a small share is redistributed through tq[0]);
//   - a free-list lock `freeInter` taken a few times per task with a
//     medium critical section (interaction record allocation) — at low
//     thread counts its size makes it the top critical lock;
//   - a `pbar_lock` counter lock and a phase barrier `pbar`.
//
// The optimized variant (config.optimized) replaces every queue's single
// lock with the Michael & Scott two-lock queue (q_head_lock/q_tail_lock),
// exactly the paper's validation optimization [15].
//
// Params (defaults calibrated against the paper's Figs. 9-11 shapes):
//   tasks        total task count                   (default 2400)
//   task_work    mean work units per task           (default 650)
//   qlock_cs     units held under a queue lock      (default 50)
//   fi_cs        freeInter critical-section units   (default 8)
//   fi_per_task  freeInter acquisitions per task    (default 3)
//   spawn_prob   probability a task spawns a child  (default 0.5)
//   p0           share of children redistributed through tq[0] (default 0.25)
//   item_cs      per-item units inside batch queue ops (default 1)
//   warmup       per-thread local warm-up tasks per phase (default 4)
//   phases       barrier-separated phases           (default 6)
//   poll_backoff idle compute units between tq[0] polls (default 20)
#include "cla/workloads/workload.hpp"

#include <atomic>
#include <memory>
#include <vector>

#include "cla/queue/queues.hpp"
#include "cla/util/rng.hpp"

namespace cla::workloads {

namespace {

struct RadiosityParams {
  std::uint64_t tasks;
  std::uint64_t task_work;
  std::uint64_t qlock_cs;
  std::uint64_t fi_cs;
  std::uint64_t fi_per_task;
  double spawn_prob;
  double p0;
  std::uint64_t item_cs;
  std::uint64_t warmup;
  std::uint64_t phases;
  std::uint64_t poll_backoff;
};

RadiosityParams read_params(const WorkloadConfig& config) {
  RadiosityParams p;
  p.tasks = static_cast<std::uint64_t>(config.param("tasks", 2400.0) * config.scale);
  p.task_work = static_cast<std::uint64_t>(config.param("task_work", 650.0));
  p.qlock_cs = static_cast<std::uint64_t>(config.param("qlock_cs", 50.0));
  p.fi_cs = static_cast<std::uint64_t>(config.param("fi_cs", 8.0));
  p.fi_per_task = static_cast<std::uint64_t>(config.param("fi_per_task", 3.0));
  p.spawn_prob = config.param("spawn_prob", 0.5);
  p.p0 = config.param("p0", 0.25);
  p.item_cs = static_cast<std::uint64_t>(config.param("item_cs", 1.0));
  p.warmup = static_cast<std::uint64_t>(config.param("warmup", 4.0));
  p.phases = std::max<std::uint64_t>(1,
      static_cast<std::uint64_t>(config.param("phases", 6.0)));
  p.poll_backoff = static_cast<std::uint64_t>(config.param("poll_backoff", 20.0));
  return p;
}

}  // namespace

WorkloadResult run_radiosity(const WorkloadConfig& config) {
  const RadiosityParams p = read_params(config);
  const std::uint32_t n = config.threads;

  auto backend = make_workload_backend(config);
  const queue::LockMode mode =
      config.optimized ? queue::LockMode::Split : queue::LockMode::Single;

  std::vector<std::unique_ptr<queue::TaskQueue<std::uint64_t>>> queues;
  queues.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    queues.push_back(std::make_unique<queue::TaskQueue<std::uint64_t>>(
        *backend, "tq[" + std::to_string(i) + "]", mode, p.qlock_cs));
  }
  const exec::MutexHandle free_inter = backend->create_mutex("freeInter");
  const exec::MutexHandle pbar_lock = backend->create_mutex("pbar_lock");
  const exec::BarrierHandle pbar = backend->create_barrier("pbar", n);

  const std::uint64_t tasks_per_phase =
      std::max<std::uint64_t>(1, p.tasks / p.phases);
  // Outstanding tasks in the current phase (seeded + spawned, not yet
  // completed). Plain atomic read in the idle loop; all writes are atomic.
  std::atomic<std::uint64_t> outstanding{0};
  std::uint64_t phase_counter = 0;  // protected by pbar_lock

  backend->run(n, [&](exec::Ctx& ctx) {
    const std::uint32_t me = ctx.worker_index();
    util::Rng rng(config.seed * 1000003 + me);

    for (std::uint64_t phase = 0; phase < p.phases; ++phase) {
      // Seeding: the phase's task batch lands in the tq[0] hub —
      // Radiosity's per-iteration refinement batch. Thread 0 splices it in
      // with one batch enqueue (building the list is unsynchronized).
      const std::uint64_t warmup =
          std::min<std::uint64_t>(p.warmup, tasks_per_phase / n);
      if (me == 0) {
        outstanding.store(tasks_per_phase, std::memory_order_relaxed);
        std::vector<std::uint64_t> batch;
        batch.reserve(tasks_per_phase - warmup * n);
        for (std::uint64_t t = warmup * n; t < tasks_per_phase; ++t) {
          batch.push_back(p.task_work / 2 + rng.below(p.task_work));
        }
        queues[0]->enqueue_batch(ctx, std::move(batch), p.item_cs);
        exec::ScopedLock guard(ctx, pbar_lock);
        ctx.compute(4);
        ++phase_counter;
      }
      // A few tasks left over from the previous iteration start in each
      // thread's own queue, staggering the first hub fetches.
      for (std::uint64_t t = 0; t < warmup; ++t) {
        queues[me]->enqueue(ctx, p.task_work / 2 + rng.below(p.task_work));
      }
      ctx.barrier_wait(pbar);
      // The region between the barriers is one parallel phase; thread 0
      // marks it so the analysis can be clipped per iteration.
      if (me == 0) ctx.phase_begin();

      // Guided self-scheduling out of the hub: fetch remaining/(2n) tasks
      // per visit, so visits per task — and with them tq[0].qlock traffic
      // and contention — grow with the thread count at fixed problem size.
      std::vector<std::uint64_t> local;  // my fetched batch (LIFO)
      while (true) {
        if (local.empty()) {
          // Refill from my own spawn queue first, then from the hub.
          if (std::optional<std::uint64_t> own = queues[me]->dequeue(ctx)) {
            local.push_back(*own);
          } else {
            const std::uint64_t left =
                outstanding.load(std::memory_order_relaxed);
            if (left == 0) break;
            const std::size_t batch_size = std::max<std::size_t>(
                1, static_cast<std::size_t>(left / (2 * n)));
            local = queues[0]->dequeue_batch(ctx, batch_size, p.item_cs);
            if (local.empty()) {
              // Hub momentarily dry while peers still work: back off and
              // re-poll (the empty probe still takes tq[0].qlock).
              ctx.compute(p.poll_backoff);
              continue;
            }
          }
        }
        const std::uint64_t task = local.back();
        local.pop_back();

        // Interaction records: allocate under freeInter (small CS).
        for (std::uint64_t k = 0; k < p.fi_per_task; ++k) {
          exec::ScopedLock guard(ctx, free_inter);
          ctx.compute(p.fi_cs);
        }

        // The task's actual computation (visibility / form factors).
        ctx.compute(task);

        // A share of tasks spawns a refinement child; most children stay
        // on the spawning thread's queue, some are redistributed through
        // the hub.
        if (rng.chance(p.spawn_prob)) {
          outstanding.fetch_add(1, std::memory_order_relaxed);
          const std::uint64_t child_work =
              p.task_work / 2 + rng.below(p.task_work / 2);
          const std::uint32_t target = rng.chance(p.p0) ? 0 : me;
          queues[target]->enqueue(ctx, child_work);
        }

        outstanding.fetch_sub(1, std::memory_order_relaxed);
      }
      if (me == 0) ctx.phase_end();
      ctx.barrier_wait(pbar);
    }
  });

  (void)phase_counter;
  WorkloadResult result;
  result.completion_time = backend->completion_time();
  result.trace = backend->take_trace();
  return result;
}

}  // namespace cla::workloads
