// Volrend analog (paper Fig. 8, "head" input).
//
// Volume rendering over image tiles: a global tile queue guarded by
// Global->QLock hands out work; rendering a tile is moderately sized, so
// QLock sees moderate contention that grows with the thread count, and a
// small `Global->CountLock` tracks completed tiles.
//
// Params:
//   tiles      image tiles               (default 900)
//   tile_work  units per tile            (default 400)
//   qlock_cs   units under QLock         (default 12)
//   count_cs   units under CountLock     (default 3)
#include "cla/workloads/workload.hpp"

#include "cla/util/rng.hpp"

namespace cla::workloads {

WorkloadResult run_volrend(const WorkloadConfig& config) {
  const auto tiles =
      static_cast<std::uint64_t>(config.param("tiles", 900.0) * config.scale);
  const auto tile_work = static_cast<std::uint64_t>(config.param("tile_work", 400.0));
  const auto qlock_cs = static_cast<std::uint64_t>(config.param("qlock_cs", 12.0));
  const auto count_cs = static_cast<std::uint64_t>(config.param("count_cs", 3.0));
  const std::uint32_t n = config.threads;

  auto backend = make_workload_backend(config);
  const exec::MutexHandle qlock = backend->create_mutex("Global->QLock");
  const exec::MutexHandle count_lock = backend->create_mutex("Global->CountLock");

  std::uint64_t next_tile = 0;
  std::uint64_t done = 0;

  backend->run(n, [&](exec::Ctx& ctx) {
    util::Rng rng(config.seed * 104729 + ctx.worker_index());
    while (true) {
      std::uint64_t tile;
      {
        exec::ScopedLock guard(ctx, qlock);
        ctx.compute(qlock_cs);
        tile = next_tile < tiles ? next_tile++ : tiles;
      }
      if (tile >= tiles) break;
      // Ray casting through the tile; cost varies with opacity.
      ctx.compute(tile_work / 2 + rng.below(tile_work));
      {
        exec::ScopedLock guard(ctx, count_lock);
        ctx.compute(count_cs);
        ++done;
      }
    }
  });

  (void)done;
  WorkloadResult result;
  result.completion_time = backend->completion_time();
  result.trace = backend->take_trace();
  return result;
}

}  // namespace cla::workloads
