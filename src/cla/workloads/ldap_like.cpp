// OpenLDAP-like directory server (paper §V.C, Fig. 8).
//
// The paper's OpenLDAP result is a *negative* one: after a decade of
// tuning, its locks are fine-grained or rarely taken, so critical
// sections are not a significant bottleneck. This analog preserves that
// structure: a load generator thread (SLAMD stand-in) pushes 10k search
// requests through a condvar-signalled connection queue; each worker
// resolves a request against a directory of entries protected by a large
// array of per-entry locks, touching one entry lock briefly plus a
// connection counter mutex. Every lock's CP share should come out well
// under a few percent.
//
// Params:
//   requests     search operations           (default 10000, as in Table 1)
//   entries      directory entries           (default 10000)
//   entry_locks  size of the entry-lock array (default 256)
//   search_work  units per search            (default 140)
//   entry_cs     units under an entry lock   (default 4)
//   conn_cs      units under conn_mutex      (default 2)
#include "cla/workloads/workload.hpp"

#include <deque>
#include <vector>

#include "cla/util/rng.hpp"

namespace cla::workloads {

WorkloadResult run_ldap(const WorkloadConfig& config) {
  const auto requests = static_cast<std::uint64_t>(
      config.param("requests", 10000.0) * config.scale);
  const auto entry_lock_count =
      static_cast<std::uint32_t>(config.param("entry_locks", 256.0));
  const auto search_work =
      static_cast<std::uint64_t>(config.param("search_work", 140.0));
  const auto entry_cs = static_cast<std::uint64_t>(config.param("entry_cs", 4.0));
  const auto conn_cs = static_cast<std::uint64_t>(config.param("conn_cs", 2.0));
  const std::uint32_t workers = config.threads;

  auto backend = make_workload_backend(config);
  const exec::MutexHandle queue_mutex = backend->create_mutex("conn->c_mutex");
  const exec::CondHandle queue_cond = backend->create_cond("conn->c_cond");
  std::vector<exec::MutexHandle> entry_locks;
  entry_locks.reserve(entry_lock_count);
  for (std::uint32_t i = 0; i < entry_lock_count; ++i) {
    entry_locks.push_back(
        backend->create_mutex("entry_lock[" + std::to_string(i) + "]"));
  }

  // Connection queue shared between the generator (worker 0, the SLAMD
  // stand-in on its dedicated core) and the slapd workers.
  std::deque<std::uint64_t> pending;
  bool closed = false;

  backend->run(workers + 1, [&](exec::Ctx& ctx) {
    util::Rng rng(config.seed * 262147 + ctx.worker_index());
    if (ctx.worker_index() == 0) {
      // Load generator: batch requests into the connection queue.
      const std::uint64_t batch = 32;
      std::uint64_t sent = 0;
      while (sent < requests) {
        const std::uint64_t now_batch = std::min(batch, requests - sent);
        {
          exec::ScopedLock guard(ctx, queue_mutex);
          ctx.compute(conn_cs);
          for (std::uint64_t b = 0; b < now_batch; ++b) {
            pending.push_back(rng.next());
          }
        }
        ctx.cond_broadcast(queue_cond);
        sent += now_batch;
        ctx.compute(search_work / 4);  // request generation pacing
      }
      {
        exec::ScopedLock guard(ctx, queue_mutex);
        ctx.compute(conn_cs);
        closed = true;
      }
      ctx.cond_broadcast(queue_cond);
      return;
    }

    // slapd worker.
    while (true) {
      std::uint64_t request = 0;
      bool have = false;
      {
        ctx.lock(queue_mutex);
        while (pending.empty() && !closed) {
          ctx.cond_wait(queue_cond, queue_mutex);
        }
        ctx.compute(conn_cs);
        if (!pending.empty()) {
          request = pending.front();
          pending.pop_front();
          have = true;
        }
        const bool finished = !have && closed;
        ctx.unlock(queue_mutex);
        if (finished) break;
      }
      if (!have) continue;

      // Search: index walk (pure compute) + one entry lock touch.
      ctx.compute(search_work / 2 + rng.below(search_work));
      const auto lock_idx =
          static_cast<std::uint32_t>(request % entry_lock_count);
      exec::ScopedLock guard(ctx, entry_locks[lock_idx]);
      ctx.compute(entry_cs);
    }
  });

  WorkloadResult result;
  result.completion_time = backend->completion_time();
  result.trace = backend->take_trace();
  return result;
}

}  // namespace cla::workloads
