// The two-lock micro-benchmark of paper Fig. 5.
//
// Every thread executes, in order:
//   lock(L1); <A units of work>; unlock(L1);
//   lock(L2); <B units of work>; unlock(L2);
// with B/A = 2.5e9/2.0e9 = 1.25 as in the paper. The second critical
// section dominates the critical path (all B-sections serialize behind
// each other once the pipeline fills), while L1 accumulates the larger
// *wait* time — the divergence Fig. 6 demonstrates.
//
// Params:
//   cs1 / cs2   work units inside CS1 / CS2 (default 2000 / 2500)
//   opt_l1=1    shrink CS1 by `opt_amount` (validation run)
//   opt_l2=1    shrink CS2 by `opt_amount` (validation run)
//   opt_amount  units removed by an optimization (default 1000, i.e. the
//               paper's "1 billion iterations")
#include "cla/workloads/workload.hpp"

#include "cla/util/error.hpp"

namespace cla::workloads {

WorkloadResult run_micro(const WorkloadConfig& config) {
  const auto base1 = static_cast<std::uint64_t>(
      config.param("cs1", 2000.0) * config.scale);
  const auto base2 = static_cast<std::uint64_t>(
      config.param("cs2", 2500.0) * config.scale);
  const auto opt = static_cast<std::uint64_t>(
      config.param("opt_amount", 1000.0) * config.scale);

  std::uint64_t cs1 = base1;
  std::uint64_t cs2 = base2;
  if (config.param("opt_l1", 0.0) != 0.0) cs1 = cs1 > opt ? cs1 - opt : 0;
  if (config.param("opt_l2", 0.0) != 0.0) cs2 = cs2 > opt ? cs2 - opt : 0;

  auto backend = make_workload_backend(config);
  const exec::MutexHandle l1 = backend->create_mutex("L1");
  const exec::MutexHandle l2 = backend->create_mutex("L2");

  backend->run(config.threads, [&](exec::Ctx& ctx) {
    {
      exec::ScopedLock guard(ctx, l1);
      ctx.compute(cs1);  // for (i = 0; i < 2e9; i++) a++;
    }
    {
      exec::ScopedLock guard(ctx, l2);
      ctx.compute(cs2);  // for (j = 0; j < 2.5e9; j++) b++;
    }
  });

  WorkloadResult result;
  result.completion_time = backend->completion_time();
  result.trace = backend->take_trace();
  return result;
}

}  // namespace cla::workloads
