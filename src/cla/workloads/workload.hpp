// Case-study workload framework.
//
// Each workload reproduces the locking structure of one application from
// the paper's evaluation (Table 1): the two-lock micro-benchmark, the
// SPLASH-2 analogs, TSP, UTS and the OpenLDAP-like server. A workload is
// parameterized by thread count, scale and the "optimized" flag (the
// paper's validation optimization), runs on either execution backend, and
// returns the trace for critical lock analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cla/exec/backend.hpp"
#include "cla/trace/trace.hpp"

namespace cla::workloads {

struct WorkloadConfig {
  std::uint32_t threads = 4;
  std::string backend = "sim";   ///< "sim" or "pthread"
  bool optimized = false;        ///< apply the paper's lock optimization
  std::uint64_t seed = 42;       ///< deterministic workload randomness
  double scale = 1.0;            ///< work-size multiplier
  /// Workload-specific knobs (documented per workload), e.g. the
  /// micro-benchmark's {"opt_l1",1} to shrink CS1 instead of CS2.
  std::map<std::string, double> params;
  /// Accelerated critical sections (paper §VII): lock name -> compute
  /// scale factor (< 1.0) applied inside that lock's critical sections.
  /// Honoured by the sim backend, ignored on real pthreads.
  std::map<std::string, double> accelerate;

  double param(const std::string& name, double fallback) const {
    auto it = params.find(name);
    return it == params.end() ? fallback : it->second;
  }
};

struct WorkloadResult {
  trace::Trace trace;
  std::uint64_t completion_time = 0;  ///< ns (virtual or real)
};

using WorkloadFn = std::function<WorkloadResult(const WorkloadConfig&)>;

struct WorkloadInfo {
  std::string name;
  std::string description;
};

/// Registers a workload; called by register_all_workloads().
void register_workload(std::string name, std::string description, WorkloadFn fn);

/// Registers every built-in workload (idempotent).
void register_all_workloads();

/// Runs a registered workload. Throws cla::util::Error for unknown names.
WorkloadResult run_workload(const std::string& name, const WorkloadConfig& config);

/// All registered workloads, sorted by name.
std::vector<WorkloadInfo> list_workloads();

/// Creates the execution backend for a workload run: resolves
/// config.backend and applies config.accelerate requests. All built-in
/// workloads obtain their backend through this helper.
std::unique_ptr<exec::Backend> make_workload_backend(const WorkloadConfig& config);

// Direct entry points (also reachable through the registry):
WorkloadResult run_micro(const WorkloadConfig& config);      ///< Fig. 5/6/7
WorkloadResult run_radiosity(const WorkloadConfig& config);  ///< Figs. 9-14
WorkloadResult run_tsp(const WorkloadConfig& config);        ///< §V.E
WorkloadResult run_uts(const WorkloadConfig& config);        ///< Fig. 8
WorkloadResult run_water(const WorkloadConfig& config);      ///< Fig. 8
WorkloadResult run_volrend(const WorkloadConfig& config);    ///< Fig. 8
WorkloadResult run_raytrace(const WorkloadConfig& config);   ///< Fig. 8
WorkloadResult run_ldap(const WorkloadConfig& config);       ///< Fig. 8

}  // namespace cla::workloads
