// Pthreads-style branch-and-bound Travelling Salesman (paper §V.E).
//
// A real branch-and-bound: partial tours live in a single global work
// queue protected by `Qlock` ("A global task queue protected by Qlock is
// used by TSP to maintain the paths"), the incumbent best tour under
// `BestLock`. Every expansion dequeues a partial tour, extends it by each
// unvisited city, prunes against the bound, and enqueues survivors —
// so every thread hits Qlock constantly and its critical sections dominate
// the critical path (the paper reports 68 % CP time).
//
// The optimized variant splits Qlock into Q_headlock/Q_taillock via the
// two-lock queue, parallelizing enqueue and dequeue (+19 % at 24 threads
// in the paper).
//
// Params (defaults calibrated to the paper's 68 % CP / +19 % results):
//   cities       number of cities (default 9; Table 1 uses 10 — 9 keeps
//                the search tree tractable for CI-sized runs)
//   expand_work  work units per city distance evaluation (default 135)
//   qlock_cs     units of queue bookkeeping under the lock (default 15)
#include "cla/workloads/workload.hpp"

#include <array>
#include <memory>
#include <vector>

#include "cla/queue/queues.hpp"
#include "cla/util/error.hpp"
#include "cla/util/rng.hpp"

namespace cla::workloads {

namespace {

constexpr std::size_t kMaxCities = 16;

/// A partial tour: visited set as a bitmask, current city, accumulated
/// length, path order packed 4 bits per hop (enough for 16 cities).
struct Tour {
  std::uint32_t visited = 1;  // city 0 always first
  std::uint8_t last = 0;
  std::uint8_t count = 1;
  std::uint32_t length = 0;
};

struct TspWorld {
  std::size_t cities = 10;
  std::array<std::array<std::uint32_t, kMaxCities>, kMaxCities> dist{};

  explicit TspWorld(std::size_t city_count, std::uint64_t seed)
      : cities(city_count) {
    CLA_CHECK(cities >= 3 && cities <= kMaxCities, "cities must be in [3,16]");
    util::Rng rng(seed);
    for (std::size_t i = 0; i < cities; ++i) {
      for (std::size_t j = i + 1; j < cities; ++j) {
        const auto d = static_cast<std::uint32_t>(rng.range(10, 99));
        dist[i][j] = d;
        dist[j][i] = d;
      }
    }
  }

  /// Nearest-neighbour tour length — the initial incumbent, so pruning
  /// bites from the first expansion (keeps the search tree tractable).
  std::uint32_t greedy_bound() const {
    std::uint32_t visited = 1;
    std::size_t at = 0;
    std::uint32_t total = 0;
    for (std::size_t step = 1; step < cities; ++step) {
      std::size_t best = 0;
      std::uint32_t best_d = ~0u;
      for (std::size_t c = 1; c < cities; ++c) {
        if ((visited & (1u << c)) == 0 && dist[at][c] < best_d) {
          best = c;
          best_d = dist[at][c];
        }
      }
      visited |= 1u << best;
      total += best_d;
      at = best;
    }
    return total + dist[at][0];
  }
};

}  // namespace

WorkloadResult run_tsp(const WorkloadConfig& config) {
  const auto cities = static_cast<std::size_t>(config.param("cities", 9.0));
  const auto expand_work =
      static_cast<std::uint64_t>(config.param("expand_work", 135.0));
  const auto qlock_cs = static_cast<std::uint64_t>(config.param("qlock_cs", 15.0));

  const TspWorld world(cities, config.seed);
  auto backend = make_workload_backend(config);

  const queue::LockMode mode =
      config.optimized ? queue::LockMode::Split : queue::LockMode::Single;
  queue::TaskQueue<Tour> work_queue(*backend, "Q", mode, qlock_cs);
  const exec::MutexHandle best_lock = backend->create_mutex("BestLock");

  // Shared incumbent, mutated only under BestLock. Starts at the greedy
  // tour so branch-and-bound pruning is effective immediately.
  std::uint32_t best_length = world.greedy_bound();

  backend->run(config.threads, [&](exec::Ctx& ctx) {
    util::Rng rng(config.seed * 48271 + ctx.worker_index());
    // Thread 0 seeds the root tour.
    if (ctx.worker_index() == 0) {
      work_queue.enqueue(ctx, Tour{});
    }
    std::uint64_t dry_probes = 0;
    while (true) {
      std::optional<Tour> tour = work_queue.dequeue(ctx);
      if (!tour) {
        // The queue can be transiently empty while peers still expand;
        // probe a bounded number of times before giving up.
        if (++dry_probes > 4) break;
        ctx.compute(expand_work * cities);
        continue;
      }
      dry_probes = 0;
      const Tour& t = *tour;

      if (t.count == world.cities) {
        // Close the tour back to city 0.
        const std::uint32_t total = t.length + world.dist[t.last][0];
        ctx.compute(expand_work);
        exec::ScopedLock guard(ctx, best_lock);
        ctx.compute(2);
        if (total < best_length) best_length = total;
        continue;
      }

      // Recompute the node's lower bound (touches every city pair once —
      // fixed O(cities) work per dequeued node in the real benchmark).
      ctx.compute(expand_work * cities / 6);

      // Snapshot the bound once per expansion (under BestLock, tiny CS).
      std::uint32_t bound;
      {
        exec::ScopedLock guard(ctx, best_lock);
        ctx.compute(2);
        bound = best_length;
      }

      std::vector<Tour> children;
      children.reserve(world.cities);
      for (std::uint8_t city = 1; city < world.cities; ++city) {
        if (t.visited & (1u << city)) continue;
        // Distance evaluation / bound math; the cost varies per candidate
        // (cache behaviour, partial-bound refinement in the real code).
        ctx.compute(expand_work / 2 + rng.below(expand_work));
        const std::uint32_t len = t.length + world.dist[t.last][city];
        if (len >= bound) continue;  // prune
        Tour child = t;
        child.visited |= 1u << city;
        child.last = city;
        child.count = static_cast<std::uint8_t>(t.count + 1);
        child.length = len;
        children.push_back(child);
      }
      // All surviving children are enqueued in one critical section, as
      // the real benchmark splices a node's children into the list.
      if (!children.empty()) {
        work_queue.enqueue_batch(ctx, std::move(children), 2);
      }
    }
  });

  WorkloadResult result;
  result.completion_time = backend->completion_time();
  result.trace = backend->take_trace();
  return result;
}

}  // namespace cla::workloads
