// Water-nsquared analog (paper Fig. 8, "512 molec").
//
// Structure that matters: barrier-separated force/update phases over a
// fixed molecule set, with a small `gl->IndexLock` taken when claiming the
// next block of molecule pairs and per-molecule accumulation locks
// (`MolLock[i]`) taken briefly when writing back forces. Critical
// sections are tiny relative to the O(n^2) force computation, so locks
// barely matter — barriers dominate — but IndexLock still appears on the
// critical path with a small share.
//
// Params:
//   molecules   molecule count            (default 512 as in Table 1)
//   steps       timesteps                 (default 3)
//   pair_work   units per pair interaction chunk (default 8)
//   index_cs    units under IndexLock     (default 3)
//   mol_cs      units under a MolLock     (default 3)
//   mol_locks   number of molecule locks  (default 32)
#include "cla/workloads/workload.hpp"

#include <vector>

#include "cla/util/rng.hpp"

namespace cla::workloads {

WorkloadResult run_water(const WorkloadConfig& config) {
  const auto molecules = static_cast<std::uint64_t>(
      config.param("molecules", 512.0) * config.scale);
  const auto steps = static_cast<std::uint64_t>(config.param("steps", 3.0));
  const auto pair_work = static_cast<std::uint64_t>(config.param("pair_work", 8.0));
  const auto index_cs = static_cast<std::uint64_t>(config.param("index_cs", 3.0));
  const auto mol_cs = static_cast<std::uint64_t>(config.param("mol_cs", 3.0));
  const auto mol_lock_count =
      static_cast<std::uint32_t>(config.param("mol_locks", 32.0));
  const std::uint32_t n = config.threads;

  auto backend = make_workload_backend(config);
  const exec::MutexHandle index_lock = backend->create_mutex("gl->IndexLock");
  std::vector<exec::MutexHandle> mol_locks;
  mol_locks.reserve(mol_lock_count);
  for (std::uint32_t i = 0; i < mol_lock_count; ++i) {
    mol_locks.push_back(
        backend->create_mutex("MolLock[" + std::to_string(i) + "]"));
  }
  const exec::BarrierHandle phase_barrier = backend->create_barrier("gl->bar", n);

  // Block claim cursor, protected by IndexLock.
  std::uint64_t next_block = 0;
  const std::uint64_t block_size = 8;
  const std::uint64_t blocks = (molecules + block_size - 1) / block_size;

  backend->run(n, [&](exec::Ctx& ctx) {
    util::Rng rng(config.seed * 31337 + ctx.worker_index());
    for (std::uint64_t step = 0; step < steps; ++step) {
      // Phase 1: force computation over dynamically claimed blocks.
      while (true) {
        std::uint64_t block;
        {
          exec::ScopedLock guard(ctx, index_lock);
          ctx.compute(index_cs);
          block = next_block < blocks ? next_block++ : blocks;
        }
        if (block >= blocks) break;
        // O(molecules) pair interactions for this block (n-squared).
        ctx.compute(pair_work * molecules / 8 + rng.below(pair_work * 8));
        // Write back into a few molecules' accumulators.
        for (int k = 0; k < 3; ++k) {
          const auto lock_idx =
              static_cast<std::uint32_t>(rng.below(mol_lock_count));
          exec::ScopedLock guard(ctx, mol_locks[lock_idx]);
          ctx.compute(mol_cs);
        }
      }
      ctx.barrier_wait(phase_barrier);
      // Thread 0 resets the cursor between phases (uncontended: everyone
      // else is past the barrier and waits at the next one).
      if (ctx.worker_index() == 0) {
        exec::ScopedLock guard(ctx, index_lock);
        ctx.compute(index_cs);
        next_block = 0;
      }
      // Phase 2: position update, evenly partitioned, then sync.
      ctx.compute(pair_work * molecules / std::max(1u, n));
      ctx.barrier_wait(phase_barrier);
    }
  });

  WorkloadResult result;
  result.completion_time = backend->completion_time();
  result.trace = backend->take_trace();
  return result;
}

}  // namespace cla::workloads
