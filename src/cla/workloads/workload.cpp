#include "cla/workloads/workload.hpp"

#include <algorithm>
#include <mutex>

#include "cla/util/error.hpp"

namespace cla::workloads {

namespace {

struct Registry {
  std::map<std::string, std::pair<std::string, WorkloadFn>> entries;
  std::mutex mutex;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

void register_workload(std::string name, std::string description, WorkloadFn fn) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.entries[std::move(name)] = {std::move(description), std::move(fn)};
}

void register_all_workloads() {
  static const bool once = [] {
    register_workload("micro",
                      "two-lock micro-benchmark (paper Fig. 5/6/7)", run_micro);
    register_workload(
        "radiosity",
        "SPLASH-2 Radiosity analog: per-thread task queues, tq[0] shared "
        "(paper Figs. 9-14)",
        run_radiosity);
    register_workload("tsp",
                      "branch-and-bound TSP over a global Qlock queue "
                      "(paper SV.E)",
                      run_tsp);
    register_workload("uts",
                      "unbalanced tree search with per-thread stackLock[i] "
                      "(paper Fig. 8)",
                      run_uts);
    register_workload("water",
                      "Water-nsquared analog: barrier phases + IndexLock "
                      "(paper Fig. 8)",
                      run_water);
    register_workload("volrend",
                      "Volrend analog: global image-tile QLock "
                      "(paper Fig. 8)",
                      run_volrend);
    register_workload("raytrace",
                      "Raytrace analog: mem allocator lock + job queues "
                      "(paper Fig. 8)",
                      run_raytrace);
    register_workload("ldap",
                      "OpenLDAP-like server: fine-grained entry locks, "
                      "negligible CS bottleneck (paper Fig. 8)",
                      run_ldap);
    return true;
  }();
  (void)once;
}

WorkloadResult run_workload(const std::string& name, const WorkloadConfig& config) {
  register_all_workloads();
  Registry& reg = registry();
  WorkloadFn fn;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.entries.find(name);
    CLA_CHECK(it != reg.entries.end(), "unknown workload '" + name + "'");
    fn = it->second.second;
  }
  return fn(config);
}

std::unique_ptr<exec::Backend> make_workload_backend(const WorkloadConfig& config) {
  auto backend = exec::make_backend(config.backend);
  for (const auto& [lock_name, factor] : config.accelerate) {
    backend->request_acceleration(lock_name, factor);
  }
  return backend;
}

std::vector<WorkloadInfo> list_workloads() {
  register_all_workloads();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<WorkloadInfo> out;
  out.reserve(reg.entries.size());
  for (const auto& [name, entry] : reg.entries) {
    out.push_back(WorkloadInfo{name, entry.first});
  }
  return out;
}

}  // namespace cla::workloads
