// Unbalanced Tree Search analog (paper Fig. 8, UTS -T8 -c 2 ST3).
//
// Each thread owns a work stack guarded by stackLock[i]; nodes are
// expanded with a seeded geometric fan-out, and one designated subtree
// (rooted under the thread with index `hot_thread`, default 5) is made
// much deeper than the rest — the "unbalanced" part. Idle threads steal
// from the other stacks.
//
// The published finding this reproduces: stackLock[5] shows essentially
// no lock contention (Wait Time ~ 0) yet sits on the critical path —
// the hot thread's own uncontended push/pop traffic is critical because
// that thread IS the critical path. Idleness-based metrics miss it.
//
// Params:
//   roots        initial nodes per thread             (default 12)
//   node_work    work units per node expansion        (default 120)
//   stack_cs     units under a stack lock             (default 5)
//   fanout_prob  chance an expanded node yields children (default 0.45)
//   hot_thread   index of the heavy subtree's owner   (default 5)
//   hot_chain    length of the heavy serial chain     (default 900)
#include "cla/workloads/workload.hpp"

#include <memory>
#include <vector>

#include "cla/queue/queues.hpp"
#include "cla/util/rng.hpp"

namespace cla::workloads {

namespace {

struct UtsNode {
  std::uint32_t depth = 0;
  bool hot = false;  ///< belongs to the heavy subtree
};

}  // namespace

WorkloadResult run_uts(const WorkloadConfig& config) {
  const auto roots = static_cast<std::uint64_t>(config.param("roots", 12.0) *
                                                config.scale);
  const auto node_work =
      static_cast<std::uint64_t>(config.param("node_work", 120.0));
  const auto stack_cs = static_cast<std::uint64_t>(config.param("stack_cs", 5.0));
  const double fanout_prob = config.param("fanout_prob", 0.45);
  const auto hot_chain =
      static_cast<std::uint32_t>(config.param("hot_chain", 900.0) * config.scale);
  const std::uint32_t n = config.threads;
  const std::uint32_t hot_thread =
      std::min<std::uint32_t>(static_cast<std::uint32_t>(config.param("hot_thread", 5.0)),
                              n - 1);
  const std::uint32_t max_depth = 40;

  auto backend = make_workload_backend(config);

  // Per-thread LIFO stacks; UTS's stacks are protected by one lock each.
  std::vector<std::unique_ptr<queue::CoarseQueue<UtsNode>>> stacks;
  std::vector<exec::MutexHandle> dummy;  // names come from CoarseQueue
  stacks.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    stacks.push_back(std::make_unique<queue::CoarseQueue<UtsNode>>(
        *backend, "stackLock[" + std::to_string(i) + "]", stack_cs));
  }

  backend->run(n, [&](exec::Ctx& ctx) {
    const std::uint32_t me = ctx.worker_index();
    util::Rng rng(config.seed * 7919 + me);

    // Seed own roots; the hot thread's first root starts the heavy chain.
    for (std::uint64_t r = 0; r < roots; ++r) {
      stacks[me]->enqueue(ctx, UtsNode{0, me == hot_thread && r == 0});
    }

    std::uint64_t dry = 0;
    while (true) {
      std::optional<UtsNode> node = stacks[me]->dequeue(ctx);
      if (!node) {
        // Steal scan (round-robin from the right neighbour).
        for (std::uint32_t k = 1; k < n && !node; ++k) {
          node = stacks[(me + k) % n]->dequeue(ctx);
        }
      }
      if (!node) {
        if (++dry > 2) break;
        ctx.compute(node_work / 2);
        continue;
      }
      dry = 0;

      ctx.compute(node_work);  // hash-based node expansion in real UTS

      if (node->hot) {
        // The unbalanced part: one deep, essentially serial chain rooted
        // at the hot thread. Its owner's stackLock[hot] stays uncontended
        // but on the critical path for the whole chain.
        if (node->depth < hot_chain) {
          stacks[hot_thread]->enqueue(ctx, UtsNode{node->depth + 1, true});
        }
      } else if (node->depth < max_depth && rng.uniform() < fanout_prob) {
        // Subcritical geometric fan-out elsewhere: two children.
        stacks[me]->enqueue(ctx, UtsNode{node->depth + 1, false});
        stacks[me]->enqueue(ctx, UtsNode{node->depth + 1, false});
      }
    }
  });

  WorkloadResult result;
  result.completion_time = backend->completion_time();
  result.trace = backend->take_trace();
  return result;
}

}  // namespace cla::workloads
