// Instrumented pthread-style synchronization wrappers (paper Fig. 4).
//
// These implement the exact MAGIC() placement the paper describes:
//   - lock: record "acquire"; try-lock first; on EBUSY record the
//     contention and fall back to the blocking lock; record "obtain"
//     with the contended flag;
//   - unlock: record "release" AFTER the real unlock so instrumentation
//     never extends the critical section;
//   - barrier: record arrival BEFORE the wait (the arrival time is what
//     the analysis needs), record leave after;
//   - condvar: record around wait/signal so the analyzer can match the
//     waking signal.
//
// Used directly by the pthread execution backend and examples that link
// CLA in-process; the LD_PRELOAD interposer reimplements the same
// protocol against the real libpthread symbols.
#pragma once

#include <pthread.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "cla/runtime/recorder.hpp"

namespace cla::rt {

/// Object id of an in-process synchronization object: its address.
inline trace::ObjectId object_id(const void* address) noexcept {
  return reinterpret_cast<trace::ObjectId>(address);
}

/// A pthread mutex with Fig. 4 instrumentation.
class InstrumentedMutex {
 public:
  explicit InstrumentedMutex(std::string name = {});
  ~InstrumentedMutex();

  InstrumentedMutex(const InstrumentedMutex&) = delete;
  InstrumentedMutex& operator=(const InstrumentedMutex&) = delete;

  void lock();
  void unlock();

  trace::ObjectId id() const noexcept { return object_id(&mutex_); }
  pthread_mutex_t* native() noexcept { return &mutex_; }

 private:
  pthread_mutex_t mutex_;
};

/// A pthread barrier with arrival/leave instrumentation and episode
/// numbering (generation = completed waits / participants).
class InstrumentedBarrier {
 public:
  InstrumentedBarrier(std::uint32_t participants, std::string name = {});
  ~InstrumentedBarrier();

  InstrumentedBarrier(const InstrumentedBarrier&) = delete;
  InstrumentedBarrier& operator=(const InstrumentedBarrier&) = delete;

  void wait();

  trace::ObjectId id() const noexcept { return object_id(&barrier_); }

 private:
  pthread_barrier_t barrier_;
  std::uint32_t participants_;
  std::atomic<std::uint64_t> arrivals_{0};
};

/// A pthread condition variable with wait/signal instrumentation.
class InstrumentedCond {
 public:
  explicit InstrumentedCond(std::string name = {});
  ~InstrumentedCond();

  InstrumentedCond(const InstrumentedCond&) = delete;
  InstrumentedCond& operator=(const InstrumentedCond&) = delete;

  void wait(InstrumentedMutex& mutex);
  void signal();
  void broadcast();

  trace::ObjectId id() const noexcept { return object_id(&cond_); }

 private:
  pthread_cond_t cond_;
};

/// Phase markers for the calling thread: delimit the region of interest
/// (e.g. an application's parallel phase) so the analysis can be clipped
/// to it with cla::trace::clip_to_phase().
void phase_begin();
void phase_end();

/// Runs `body` on `thread_count` instrumented pthreads: the calling thread
/// becomes the coordinator (records creates/joins), each worker records
/// start/exit. `body(worker_index)` is the worker function.
void run_instrumented_threads(std::uint32_t thread_count,
                              const std::function<void(std::uint32_t)>& body);

}  // namespace cla::rt
