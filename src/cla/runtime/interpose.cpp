// LD_PRELOAD interposition library (paper §IV.A, Figs. 3-4).
//
// Preload this library to profile an *uninstrumented* pthread application:
//
//   CLA_TRACE_FILE=/tmp/app.clat LD_PRELOAD=./libcla_interpose.so ./app
//   cla-analyze /tmp/app.clat
//
// Every pthread synchronization routine that can block is overridden; the
// override records the paper's MAGIC() events around a call to the real
// routine (resolved once with dlsym(RTLD_NEXT, ...)). Synchronization
// object ids are the objects' addresses.
//
// Crash resilience: recording runs in the Recorder's streaming mode —
// per-thread bounded buffers spill to $CLA_TRACE_FILE (default
// cla_trace.clat) as checksummed `.clat` chunks while the app runs, so
// the trace survives the process. $CLA_TRACE_FORMAT picks the chunk
// encoding (v2 raw, v3 compact varint); $CLA_BUFFER_EVENTS bounds each
// buffer half (default 16384 events). Fatal signals (SIGSEGV, SIGABRT, SIGBUS,
// SIGTERM) and _exit/_Exit trigger an async-signal-safe best-effort spill
// of the still-buffered tail before the process dies; a torn final chunk
// is dropped by `cla-analyze --salvage`'s CRC check.
//
// Re-entrancy: the recorder itself may take a std::mutex during thread
// registration, which would recurse into these hooks; a thread-local
// guard routes such nested calls straight to the real routines.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "cla/runtime/recorder.hpp"
#include "cla/trace/trace_io.hpp"
#include "cla/util/clock.hpp"

namespace {

using cla::rt::Recorder;
using cla::trace::EventType;
using cla::trace::ObjectId;

// ---- real symbol resolution -------------------------------------------

// Missing symbols degrade tracing instead of killing the host: warn once
// per symbol and return nullptr; every hook null-checks its real function
// and either passes through untraced or reports ENOSYS.
template <typename Fn>
Fn resolve(const char* name) {
  void* symbol = dlsym(RTLD_NEXT, name);
  if (symbol == nullptr) {
    std::fprintf(stderr,
                 "cla_interpose: cannot resolve %s; tracing degraded\n", name);
    return nullptr;
  }
  return reinterpret_cast<Fn>(symbol);
}

struct RealPthread {
  int (*mutex_lock)(pthread_mutex_t*) =
      resolve<int (*)(pthread_mutex_t*)>("pthread_mutex_lock");
  int (*mutex_trylock)(pthread_mutex_t*) =
      resolve<int (*)(pthread_mutex_t*)>("pthread_mutex_trylock");
  int (*mutex_timedlock)(pthread_mutex_t*, const struct timespec*) =
      resolve<int (*)(pthread_mutex_t*, const struct timespec*)>(
          "pthread_mutex_timedlock");
  int (*mutex_unlock)(pthread_mutex_t*) =
      resolve<int (*)(pthread_mutex_t*)>("pthread_mutex_unlock");
  int (*barrier_init)(pthread_barrier_t*, const pthread_barrierattr_t*,
                      unsigned) =
      resolve<int (*)(pthread_barrier_t*, const pthread_barrierattr_t*,
                      unsigned)>("pthread_barrier_init");
  int (*barrier_wait)(pthread_barrier_t*) =
      resolve<int (*)(pthread_barrier_t*)>("pthread_barrier_wait");
  int (*cond_wait)(pthread_cond_t*, pthread_mutex_t*) =
      resolve<int (*)(pthread_cond_t*, pthread_mutex_t*)>("pthread_cond_wait");
  int (*cond_timedwait)(pthread_cond_t*, pthread_mutex_t*,
                        const struct timespec*) =
      resolve<int (*)(pthread_cond_t*, pthread_mutex_t*,
                      const struct timespec*)>("pthread_cond_timedwait");
  int (*cond_signal)(pthread_cond_t*) =
      resolve<int (*)(pthread_cond_t*)>("pthread_cond_signal");
  int (*cond_broadcast)(pthread_cond_t*) =
      resolve<int (*)(pthread_cond_t*)>("pthread_cond_broadcast");
  int (*create)(pthread_t*, const pthread_attr_t*, void* (*)(void*), void*) =
      resolve<int (*)(pthread_t*, const pthread_attr_t*, void* (*)(void*),
                      void*)>("pthread_create");
  int (*join)(pthread_t, void**) =
      resolve<int (*)(pthread_t, void**)>("pthread_join");
  void (*exit_now)(int) = resolve<void (*)(int)>("_exit");
};

RealPthread& real() {
  static RealPthread fns;
  return fns;
}

// ---- re-entrancy guard --------------------------------------------------

thread_local int tls_in_hook = 0;

struct HookGuard {
  bool armed;
  // Disarmed while re-entered from a hook AND while the calling thread is
  // recorder machinery (the flusher loop, atfork handlers): the
  // recorder's own pthread use must never surface as trace events.
  HookGuard()
      : armed(tls_in_hook == 0 && !Recorder::current_thread_internal()) {
    ++tls_in_hook;
  }
  ~HookGuard() { --tls_in_hook; }
  HookGuard(const HookGuard&) = delete;
  HookGuard& operator=(const HookGuard&) = delete;
};

// ---- barrier participant tracking ---------------------------------------

struct BarrierShadow {
  unsigned participants = 0;
  std::atomic<std::uint64_t> arrivals{0};
};

// Spinlock-protected maps: must not use pthread mutexes (we override them).
std::atomic_flag g_barrier_lock = ATOMIC_FLAG_INIT;
std::map<void*, BarrierShadow>* g_barriers = nullptr;

std::atomic_flag g_thread_map_lock = ATOMIC_FLAG_INIT;
std::map<pthread_t, cla::trace::ThreadId>* g_thread_ids = nullptr;

void remember_thread(pthread_t handle, cla::trace::ThreadId tid) {
  while (g_thread_map_lock.test_and_set(std::memory_order_acquire)) {}
  if (g_thread_ids == nullptr)
    g_thread_ids = new std::map<pthread_t, cla::trace::ThreadId>();
  (*g_thread_ids)[handle] = tid;
  g_thread_map_lock.clear(std::memory_order_release);
}

cla::trace::ThreadId lookup_thread(pthread_t handle) {
  while (g_thread_map_lock.test_and_set(std::memory_order_acquire)) {}
  cla::trace::ThreadId tid = cla::trace::kNoThread;
  if (g_thread_ids != nullptr) {
    auto it = g_thread_ids->find(handle);
    if (it != g_thread_ids->end()) tid = it->second;
  }
  g_thread_map_lock.clear(std::memory_order_release);
  return tid;
}

BarrierShadow* barrier_shadow(pthread_barrier_t* barrier, bool create_entry) {
  while (g_barrier_lock.test_and_set(std::memory_order_acquire)) {}
  if (g_barriers == nullptr) g_barriers = new std::map<void*, BarrierShadow>();
  BarrierShadow* shadow = nullptr;
  auto it = g_barriers->find(barrier);
  if (it != g_barriers->end()) {
    shadow = &it->second;
  } else if (create_entry) {
    shadow = &(*g_barriers)[barrier];
  }
  g_barrier_lock.clear(std::memory_order_release);
  return shadow;
}

// ---- fatal-signal spill --------------------------------------------------

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGTERM};

void fatal_signal_handler(int sig) {
  // Async-signal-safe: crash_spill only touches atomics and writev().
  Recorder::instance().crash_spill();
  struct sigaction dfl = {};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  sigaction(sig, &dfl, nullptr);
  raise(sig);  // delivered with default disposition on handler return
}

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = &fatal_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  for (int sig : kFatalSignals) {
    struct sigaction old = {};
    if (sigaction(sig, nullptr, &old) == 0 && old.sa_handler == SIG_IGN &&
        sig == SIGTERM) {
      continue;  // respect an inherited "ignore SIGTERM"
    }
    sigaction(sig, &sa, nullptr);
  }
}

std::size_t buffer_events_from_env() {
  constexpr std::size_t kDefault = 16384;
  const char* raw = std::getenv("CLA_BUFFER_EVENTS");
  if (raw == nullptr || *raw == '\0') return kDefault;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0) {
    std::fprintf(stderr,
                 "cla_interpose: ignoring bad CLA_BUFFER_EVENTS=%s\n", raw);
    return kDefault;
  }
  return static_cast<std::size_t>(value);
}

// $CLA_TRACE_MAX_BYTES enables ring retention: a byte cap on the trace
// file's on-disk size (0 / unset = unbounded). The writer retires the
// oldest complete chunks as counted loss once the cap is hit.
std::uint64_t ring_bytes_from_env() {
  const char* raw = std::getenv("CLA_TRACE_MAX_BYTES");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    std::fprintf(stderr,
                 "cla_interpose: ignoring bad CLA_TRACE_MAX_BYTES=%s\n", raw);
    return 0;
  }
  return static_cast<std::uint64_t>(value);
}

// ---- acquisition call-stack capture --------------------------------------
//
// $CLA_STACK_DEPTH (default 0 = off) enables recording the application
// call site of every successful mutex acquisition: up to that many return
// addresses, innermost first, interned into the trace's dedup'd
// CallStacks table and referenced through MutexAcquire's arg field.
// Depth 1 reads only this frame's return address and is always safe;
// deeper levels follow the frame-pointer chain, which requires the
// application to keep frame pointers (-fno-omit-frame-pointer) — each
// step is guarded by a null/monotonicity check on the frame address, the
// standard mitigation for a broken chain.

std::size_t stack_depth_from_env() {
  const char* raw = std::getenv("CLA_STACK_DEPTH");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    std::fprintf(stderr, "cla_interpose: ignoring bad CLA_STACK_DEPTH=%s\n",
                 raw);
    return 0;
  }
  return std::min<std::size_t>(static_cast<std::size_t>(value),
                               cla::trace::kMaxCallStackDepth);
}

std::size_t stack_depth() {
  static const std::size_t depth = stack_depth_from_env();
  return depth;
}

// Captures up to `depth` return addresses of the calling application,
// innermost first. always_inline so that, expanded inside an interposed
// entry point, level 0 is the application's call site (the hook's own
// return address), not a frame inside this library.
__attribute__((always_inline)) inline std::size_t capture_stack(
    std::uint64_t* pcs, std::size_t depth) {
  if (depth == 0) return 0;
  void* ra = __builtin_return_address(0);
  if (ra == nullptr) return 0;
  pcs[0] = reinterpret_cast<std::uint64_t>(ra);
  if (depth == 1) return 1;
  void* prev_frame = __builtin_frame_address(0);
#define CLA_FRAME(i)                                              \
  {                                                               \
    void* frame = __builtin_frame_address(i);                     \
    if (frame == nullptr || frame <= prev_frame) return (i);      \
    void* pc = __builtin_return_address(i);                       \
    if (pc == nullptr) return (i);                                \
    pcs[i] = reinterpret_cast<std::uint64_t>(pc);                 \
    if (depth == (i) + 1) return (i) + 1;                         \
    prev_frame = frame;                                           \
  }
  CLA_FRAME(1)
  CLA_FRAME(2)
  CLA_FRAME(3)
  CLA_FRAME(4)
  CLA_FRAME(5)
  CLA_FRAME(6)
  CLA_FRAME(7)
#undef CLA_FRAME
  return cla::trace::kMaxCallStackDepth;
}

// Per-thread intern cache in front of Recorder::register_call_stack: lock
// acquisitions cluster on a handful of call sites, so nearly every capture
// resolves to an id without touching the recorder's registration mutex —
// this is what keeps depth-4 capture within the ~2x overhead budget.
struct StackCacheEntry {
  std::size_t depth = 0;
  std::uint64_t pcs[cla::trace::kMaxCallStackDepth] = {};
  std::uint64_t id = 0;
};
constexpr std::size_t kStackCacheSlots = 64;
thread_local StackCacheEntry tls_stack_cache[kStackCacheSlots];

std::uint64_t intern_stack(const std::uint64_t* pcs, std::size_t depth) {
  if (depth == 0) return cla::trace::kNoArg;
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the pc chain
  for (std::size_t i = 0; i < depth; ++i) {
    h ^= pcs[i];
    h *= 1099511628211ull;
  }
  StackCacheEntry& slot = tls_stack_cache[h % kStackCacheSlots];
  if (slot.id != 0 && slot.depth == depth &&
      std::equal(pcs, pcs + depth, slot.pcs)) {
    return slot.id;
  }
  const std::uint64_t id =
      Recorder::instance().register_call_stack(pcs, depth);
  if (id == 0) return cla::trace::kNoArg;  // recorder shut down
  slot.depth = depth;
  std::copy(pcs, pcs + depth, slot.pcs);
  slot.id = id;
  return id;
}

// ---- trace lifecycle -----------------------------------------------------

const char* trace_path() {
  const char* path = std::getenv("CLA_TRACE_FILE");
  return path != nullptr ? path : "cla_trace.clat";
}

// $CLA_TRACE_FORMAT selects the streamed `.clat` version: v2 (raw chunks,
// default) or v3 (compact varint chunks). v1 has no chunk framing and
// cannot be streamed.
std::uint32_t trace_format_from_env() {
  const char* raw = std::getenv("CLA_TRACE_FORMAT");
  if (raw == nullptr || *raw == '\0') return cla::trace::kTraceVersion;
  std::uint32_t version = cla::trace::kTraceVersion;
  if (!cla::trace::parse_trace_format(raw, version) ||
      version == cla::trace::kTraceVersionLegacy) {
    std::fprintf(stderr,
                 "cla_interpose: ignoring CLA_TRACE_FORMAT=%s (want v2|v3)\n",
                 raw);
    return cla::trace::kTraceVersion;
  }
  return version;
}

struct FlushAtExit {
  bool streaming = false;

  FlushAtExit() {
    // Resolve real symbols and register the main thread as thread 0
    // before the application creates any threads. The guard keeps the
    // recorder's own flusher std::thread out of the trace.
    HookGuard guard;
    (void)real();
    Recorder& recorder = Recorder::instance();
    try {
      recorder.start_streaming(trace_path(), buffer_events_from_env(),
                               trace_format_from_env(),
                               ring_bytes_from_env());
      streaming = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "cla_interpose: cannot stream to %s (%s); "
                   "falling back to in-memory recording\n",
                   trace_path(), e.what());
    }
    recorder.ensure_current_thread();
    install_signal_handlers();
  }

  ~FlushAtExit() {
    HookGuard guard;  // recorder may lock/join during teardown
    Recorder& recorder = Recorder::instance();
    if (streaming) {
      const std::uint64_t dropped = recorder.dropped_events();
      // stream_path(), not the env var: a forked child streams to its own
      // <path>.<pid> file (and may have stopped streaming if that open
      // failed).
      const std::string path = recorder.stream_path();
      recorder.finish_streaming();
      if (recorder.streaming()) {
        std::fprintf(stderr, "cla_interpose: trace written to %s%s\n",
                     path.c_str(),
                     dropped > 0 ? " (some events dropped; see header)" : "");
      }
      return;
    }
    if (recorder.event_count() == 0) return;
    try {
      cla::trace::Trace trace = recorder.collect();
      cla::trace::write_trace_file(trace, trace_path());
      std::fprintf(stderr, "cla_interpose: wrote %zu events to %s\n",
                   trace.event_count(), trace_path());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cla_interpose: failed to write trace: %s\n",
                   e.what());
    }
  }
};

FlushAtExit g_flush;

ObjectId oid(const void* address) {
  return reinterpret_cast<ObjectId>(address);
}

// ---- pthread_create trampoline ------------------------------------------

struct StartPayload {
  void* (*fn)(void*);
  void* arg;
  cla::trace::ThreadId tid;
  cla::trace::ThreadId parent;
};

void* start_trampoline(void* raw) {
  StartPayload payload = *static_cast<StartPayload*>(raw);
  delete static_cast<StartPayload*>(raw);
  {
    HookGuard guard;
    Recorder::instance().bind_current_thread(payload.tid, payload.parent);
  }
  void* result = payload.fn(payload.arg);
  {
    HookGuard guard;
    Recorder::instance().thread_exit();
  }
  return result;
}

// A hook whose real symbol never resolved has nothing to delegate to.
// Returning a bare ENOSYS with no context is a debugging dead end, so the
// first hit per symbol leaves a stderr breadcrumb, and every hit counts
// toward the CLA_W_PARTIAL_INTERPOSITION runtime warning in the trace —
// the analyzer can tell the reader the recording has blind spots.
int missing_real(const char* name, std::atomic<bool>& warned) {
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "cla_interpose: %s called but its real symbol never "
                 "resolved; returning ENOSYS (tracing is partial)\n",
                 name);
  }
  Recorder::instance().note_partial_interposition();
  return ENOSYS;
}

#define CLA_MISSING_REAL(name)              \
  do {                                      \
    static std::atomic<bool> warned{false}; \
    return missing_real(name, warned);      \
  } while (0)

// Acquisition events are recorded only once the real call reports the
// lock is actually held (rc == 0, or EOWNERDEAD: a robust mutex was
// acquired and the caller must recover it). A failed lock (EDEADLK on an
// error-checking mutex, EINVAL, ETIMEDOUT, ...) records nothing, so lock
// pairing in the trace can't be corrupted by error paths. The wait-start
// timestamp is taken before the call and back-dated via record_at, so
// contended waits still measure from arrival, not from acquisition.
bool lock_acquired(int rc) { return rc == 0 || rc == EOWNERDEAD; }

}  // namespace

// ---- interposed entry points --------------------------------------------

extern "C" {

int pthread_mutex_lock(pthread_mutex_t* mutex) {
  HookGuard guard;
  if (real().mutex_lock == nullptr) CLA_MISSING_REAL("pthread_mutex_lock");
  if (!guard.armed) return real().mutex_lock(mutex);
  Recorder& recorder = Recorder::instance();
  std::uint64_t pcs[cla::trace::kMaxCallStackDepth];
  const std::size_t captured = capture_stack(pcs, stack_depth());
  const std::uint64_t wait_start = cla::util::now_ns();
  bool contended = false;
  int rc;
  if (real().mutex_trylock != nullptr) {
    // Contention probe. EBUSY marks the section contended; any other
    // trylock failure (EINVAL, EAGAIN recursion limit, ...) proves
    // nothing about contention, so both fall through to the real
    // blocking lock and the application sees its verdict.
    rc = real().mutex_trylock(mutex);
    if (rc == EBUSY) contended = true;
    if (!lock_acquired(rc)) rc = real().mutex_lock(mutex);
  } else {
    rc = real().mutex_lock(mutex);
  }
  if (lock_acquired(rc)) {
    recorder.record_at(EventType::MutexAcquire, wait_start, oid(mutex),
                       intern_stack(pcs, captured));
    recorder.record(EventType::MutexAcquired, oid(mutex), contended ? 1 : 0);
  }
  return rc;
}

int pthread_mutex_trylock(pthread_mutex_t* mutex) {
  HookGuard guard;
  if (real().mutex_trylock == nullptr) CLA_MISSING_REAL("pthread_mutex_trylock");
  if (!guard.armed) return real().mutex_trylock(mutex);
  Recorder& recorder = Recorder::instance();
  std::uint64_t pcs[cla::trace::kMaxCallStackDepth];
  const std::size_t captured = capture_stack(pcs, stack_depth());
  const std::uint64_t wait_start = cla::util::now_ns();
  const int rc = real().mutex_trylock(mutex);
  if (lock_acquired(rc)) {
    recorder.record_at(EventType::MutexAcquire, wait_start, oid(mutex),
                       intern_stack(pcs, captured));
    recorder.record(EventType::MutexAcquired, oid(mutex), 0);
  }
  return rc;
}

int pthread_mutex_timedlock(pthread_mutex_t* mutex,
                            const struct timespec* abstime) {
  HookGuard guard;
  if (real().mutex_timedlock == nullptr) CLA_MISSING_REAL("pthread_mutex_timedlock");
  if (!guard.armed) return real().mutex_timedlock(mutex, abstime);
  Recorder& recorder = Recorder::instance();
  std::uint64_t pcs[cla::trace::kMaxCallStackDepth];
  const std::size_t captured = capture_stack(pcs, stack_depth());
  const std::uint64_t wait_start = cla::util::now_ns();
  bool contended = false;
  int rc;
  if (real().mutex_trylock != nullptr) {
    rc = real().mutex_trylock(mutex);
    if (rc == EBUSY) contended = true;
    if (!lock_acquired(rc)) rc = real().mutex_timedlock(mutex, abstime);
  } else {
    rc = real().mutex_timedlock(mutex, abstime);
  }
  if (lock_acquired(rc)) {
    recorder.record_at(EventType::MutexAcquire, wait_start, oid(mutex),
                       intern_stack(pcs, captured));
    recorder.record(EventType::MutexAcquired, oid(mutex), contended ? 1 : 0);
  }
  return rc;
}

int pthread_mutex_unlock(pthread_mutex_t* mutex) {
  HookGuard guard;
  if (real().mutex_unlock == nullptr) CLA_MISSING_REAL("pthread_mutex_unlock");
  if (!guard.armed) return real().mutex_unlock(mutex);
  const int rc = real().mutex_unlock(mutex);
  // EPERM (not the owner) and friends release nothing: recording would
  // fabricate an unlock the analyzer pairs with someone else's hold.
  if (rc == 0) Recorder::instance().record(EventType::MutexReleased, oid(mutex));
  return rc;
}

int pthread_barrier_init(pthread_barrier_t* barrier,
                         const pthread_barrierattr_t* attr, unsigned count) {
  HookGuard guard;
  if (real().barrier_init == nullptr) CLA_MISSING_REAL("pthread_barrier_init");
  if (guard.armed) {
    BarrierShadow* shadow = barrier_shadow(barrier, /*create_entry=*/true);
    shadow->participants = count;
    shadow->arrivals.store(0, std::memory_order_relaxed);
  }
  return real().barrier_init(barrier, attr, count);
}

int pthread_barrier_wait(pthread_barrier_t* barrier) {
  HookGuard guard;
  if (real().barrier_wait == nullptr) CLA_MISSING_REAL("pthread_barrier_wait");
  if (!guard.armed) return real().barrier_wait(barrier);
  Recorder& recorder = Recorder::instance();
  std::uint64_t episode = cla::trace::kNoArg;
  if (BarrierShadow* shadow = barrier_shadow(barrier, /*create_entry=*/false);
      shadow != nullptr && shadow->participants > 0) {
    episode = shadow->arrivals.fetch_add(1, std::memory_order_relaxed) /
              shadow->participants;
  }
  recorder.record(EventType::BarrierArrive, oid(barrier), episode);
  const int rc = real().barrier_wait(barrier);
  recorder.record(EventType::BarrierLeave, oid(barrier), episode);
  return rc;
}

int pthread_cond_wait(pthread_cond_t* cond, pthread_mutex_t* mutex) {
  HookGuard guard;
  if (real().cond_wait == nullptr) CLA_MISSING_REAL("pthread_cond_wait");
  if (!guard.armed) return real().cond_wait(cond, mutex);
  Recorder& recorder = Recorder::instance();
  std::uint64_t pcs[cla::trace::kMaxCallStackDepth];
  const std::size_t captured = capture_stack(pcs, stack_depth());
  recorder.record(EventType::MutexReleased, oid(mutex));
  recorder.record(EventType::CondWaitBegin, oid(cond), oid(mutex));
  const int rc = real().cond_wait(cond, mutex);
  recorder.record(EventType::CondWaitEnd, oid(cond), oid(mutex));
  recorder.record(EventType::MutexAcquire, oid(mutex),
                  intern_stack(pcs, captured));
  recorder.record(EventType::MutexAcquired, oid(mutex), 0);
  return rc;
}

int pthread_cond_timedwait(pthread_cond_t* cond, pthread_mutex_t* mutex,
                           const struct timespec* abstime) {
  HookGuard guard;
  if (real().cond_timedwait == nullptr) CLA_MISSING_REAL("pthread_cond_timedwait");
  if (!guard.armed) return real().cond_timedwait(cond, mutex, abstime);
  Recorder& recorder = Recorder::instance();
  std::uint64_t pcs[cla::trace::kMaxCallStackDepth];
  const std::size_t captured = capture_stack(pcs, stack_depth());
  recorder.record(EventType::MutexReleased, oid(mutex));
  recorder.record(EventType::CondWaitBegin, oid(cond), oid(mutex));
  const int rc = real().cond_timedwait(cond, mutex, abstime);
  recorder.record(EventType::CondWaitEnd, oid(cond), oid(mutex));
  recorder.record(EventType::MutexAcquire, oid(mutex),
                  intern_stack(pcs, captured));
  recorder.record(EventType::MutexAcquired, oid(mutex), 0);
  return rc;
}

int pthread_cond_signal(pthread_cond_t* cond) {
  HookGuard guard;
  if (real().cond_signal == nullptr) CLA_MISSING_REAL("pthread_cond_signal");
  if (guard.armed) Recorder::instance().record(EventType::CondSignal, oid(cond));
  return real().cond_signal(cond);
}

int pthread_cond_broadcast(pthread_cond_t* cond) {
  HookGuard guard;
  if (real().cond_broadcast == nullptr) CLA_MISSING_REAL("pthread_cond_broadcast");
  if (guard.armed)
    Recorder::instance().record(EventType::CondBroadcast, oid(cond));
  return real().cond_broadcast(cond);
}

int pthread_create(pthread_t* thread, const pthread_attr_t* attr,
                   void* (*start_routine)(void*), void* arg) {
  HookGuard guard;
  if (real().create == nullptr) CLA_MISSING_REAL("pthread_create");
  if (!guard.armed) return real().create(thread, attr, start_routine, arg);
  Recorder& recorder = Recorder::instance();
  const cla::trace::ThreadId parent = recorder.ensure_current_thread();
  const cla::trace::ThreadId child = recorder.allocate_thread();
  recorder.record(EventType::ThreadCreate, static_cast<ObjectId>(child));
  auto* payload = new StartPayload{start_routine, arg, child, parent};
  const int rc = real().create(thread, attr, &start_trampoline, payload);
  if (rc != 0) {
    delete payload;
  } else {
    remember_thread(*thread, child);
  }
  return rc;
}

int pthread_join(pthread_t thread, void** retval) {
  HookGuard guard;
  if (real().join == nullptr) CLA_MISSING_REAL("pthread_join");
  if (!guard.armed) return real().join(thread, retval);
  Recorder& recorder = Recorder::instance();
  const cla::trace::ThreadId target = lookup_thread(thread);
  if (target == cla::trace::kNoThread) {
    // A thread created before this library loaded; nothing to trace.
    return real().join(thread, retval);
  }
  recorder.record(EventType::JoinBegin, static_cast<ObjectId>(target));
  const int rc = real().join(thread, retval);
  recorder.record(EventType::JoinEnd, static_cast<ObjectId>(target));
  return rc;
}

// _exit / _Exit skip atexit handlers and static destructors, so the
// normal finish_streaming() path never runs: spill what the buffers hold
// first. crash_spill is idempotent and cheap once recording is shut down.
void _exit(int status) {
  Recorder::instance().crash_spill();
  if (real().exit_now != nullptr) real().exit_now(status);
  _Exit(status);  // resolver failed; libc _Exit still terminates
}

void _Exit(int status) {
  Recorder::instance().crash_spill();
  if (real().exit_now != nullptr) real().exit_now(status);
  abort();  // unreachable unless the resolver failed entirely
}

}  // extern "C"
