#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // dladdr (glibc); must precede the first system header
#endif

#include "cla/runtime/recorder.hpp"

#include <dlfcn.h>
#include <pthread.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <new>
#include <set>

#include "cla/util/clock.hpp"
#include "cla/util/diagnostics.hpp"
#include "cla/util/error.hpp"
#include "cla/util/faultinject.hpp"

namespace cla::rt {

namespace {

struct TlsBinding {
  Recorder* recorder = nullptr;
  void* buffer = nullptr;
  std::uint64_t epoch = 0;
};

thread_local TlsBinding tls_binding;

// Epochs are process-globally unique so a stale TLS binding can never
// false-match a different (or re-created) Recorder that happens to live
// at the same address.
std::atomic<std::uint64_t> g_binding_epoch{0};

std::uint64_t next_binding_epoch() {
  return g_binding_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

// The recorder currently in streaming mode (at most one per process in
// practice — the interposer singleton; a later start_streaming wins).
// The atfork handlers and the TSD thread-exit destructor dispatch through
// this pointer because both are process-global registrations.
std::atomic<Recorder*> g_stream_recorder{nullptr};

// A TSD slot whose destructor fires when a bound thread dies for any
// reason pthread knows about — pthread_exit, pthread_cancel, or falling
// off the start routine — recording the ThreadExit the thread never got
// to record itself.
pthread_key_t g_thread_exit_key;
std::once_flag g_thread_exit_key_once;
std::once_flag g_atfork_once;

extern "C" void cla_thread_exit_destructor(void*) {
  if (Recorder* recorder = g_stream_recorder.load(std::memory_order_acquire)) {
    recorder->thread_exit_on_destroy();
  }
}

// Set while the current thread runs recorder-internal machinery; the
// interposer's HookGuard disarms on it (see current_thread_internal()).
thread_local bool tls_internal_thread = false;

// Resolves one recorded return address to "symbol+0xoff (module)" via
// dladdr. Only meaningful in the recording process (the PCs index *its*
// address space), which is why symbols travel in the trace instead of
// being resolved at analysis time. Empty string when dladdr knows
// nothing about the address (static binary, stripped JIT page...).
std::string symbolize_pc(std::uint64_t pc) {
  Dl_info info{};
  const auto addr = reinterpret_cast<void*>(static_cast<std::uintptr_t>(pc));
  if (dladdr(addr, &info) == 0) return {};
  char buf[32];
  std::string out;
  if (info.dli_sname != nullptr) {
    out = info.dli_sname;
    const auto base = reinterpret_cast<std::uintptr_t>(info.dli_saddr);
    if (base != 0 && static_cast<std::uintptr_t>(pc) >= base) {
      std::snprintf(buf, sizeof buf, "+0x%llx",
                    static_cast<unsigned long long>(pc - base));
      out += buf;
    }
  }
  if (info.dli_fname != nullptr && *info.dli_fname != '\0') {
    // Module basename only: full build paths churn golden outputs.
    const char* slash = std::strrchr(info.dli_fname, '/');
    const char* module = slash != nullptr ? slash + 1 : info.dli_fname;
    if (!out.empty()) out += ' ';
    out += '(';
    out += module;
    out += ')';
  }
  return out;
}

}  // namespace

bool Recorder::current_thread_internal() noexcept {
  return tls_internal_thread;
}

Recorder::ScopedInternal::ScopedInternal() noexcept
    : prev_(tls_internal_thread) {
  tls_internal_thread = true;
}

Recorder::ScopedInternal::~ScopedInternal() { tls_internal_thread = prev_; }

/// Legacy unbounded in-memory buffer (collect() mode).
struct Recorder::ThreadBuffer {
  trace::ThreadId tid = 0;
  std::vector<trace::Event> events;
};

/// Streaming-mode double buffer. The owning thread appends to the active
/// half and flips when it fills; the flusher (or the crash handler)
/// drains published halves. All cross-thread hand-off is via the atomics,
/// so the crash handler can read any half without locks.
struct Recorder::StreamBuffer {
  trace::ThreadId tid = 0;
  std::uint32_t capacity = 0;
  std::unique_ptr<trace::Event[]> half[2];
  std::atomic<std::uint32_t> count[2] = {0, 0};
  std::atomic<bool> full[2] = {false, false};
  std::atomic<bool> in_flight[2] = {false, false};
  std::atomic<std::uint64_t> publish_seq[2] = {0, 0};  // flush ordering
  std::atomic<std::uint64_t> last_ts{0};               // for exit synthesis
  std::atomic<bool> saw_exit{false};

  // Owner-thread-only state.
  std::uint32_t active = 0;
  std::uint64_t next_seq = 1;
  std::uint64_t clamp_ts = 0;  // per-thread monotonic timestamp repair
};

Recorder& Recorder::instance() {
  static Recorder recorder;
  return recorder;
}

Recorder::Recorder() {
  // Calibrate the TSC up front: the lazy path would charge the ~200µs
  // busy window to the first critical section that takes a timestamp.
  util::calibrate_clock();
  util::fault::init();
  epoch_.store(next_binding_epoch(), std::memory_order_relaxed);
}

Recorder::~Recorder() {
  finish_streaming();
  // Never leave the atfork/TSD dispatch pointer dangling at a destroyed
  // recorder (unit tests create short-lived streaming recorders).
  Recorder* self = this;
  g_stream_recorder.compare_exchange_strong(self, nullptr,
                                            std::memory_order_acq_rel);
}

trace::ThreadId Recorder::allocate_thread() {
  return next_tid_.fetch_add(1, std::memory_order_relaxed);
}

void Recorder::bind_current_thread(trace::ThreadId tid, trace::ThreadId parent) {
  if (shutdown_.load(std::memory_order_acquire)) return;
  void* raw = nullptr;
  if (streaming_.load(std::memory_order_acquire)) {
    auto buffer = std::make_unique<StreamBuffer>();
    buffer->tid = tid;
    buffer->capacity = static_cast<std::uint32_t>(stream_capacity_);
    buffer->half[0] = std::make_unique<trace::Event[]>(stream_capacity_);
    buffer->half[1] = std::make_unique<trace::Event[]>(stream_capacity_);
    StreamBuffer* sb = buffer.get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const std::uint32_t slot = stream_count_.load(std::memory_order_relaxed);
      if (slot >= kMaxStreamThreads) return;  // fail soft; records will drop
      stream_owned_.push_back(std::move(buffer));
      stream_registry_[slot].store(sb, std::memory_order_release);
      stream_count_.store(slot + 1, std::memory_order_release);
    }
    raw = sb;
    // Arm the per-thread exit destructor: if this thread is cancelled or
    // exits without reaching thread_exit(), the destructor records the
    // missing ThreadExit (value is a non-null sentinel; the destructor
    // resolves the recorder through g_stream_recorder).
    std::call_once(g_thread_exit_key_once, [] {
      pthread_key_create(&g_thread_exit_key, cla_thread_exit_destructor);
    });
    pthread_setspecific(g_thread_exit_key, reinterpret_cast<void*>(1));
  } else {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = tid;
    buffer->events.reserve(1024);
    raw = buffer.get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      buffers_.push_back(std::move(buffer));
    }
  }
  tls_binding = TlsBinding{this, raw, epoch_.load(std::memory_order_relaxed)};
  record(trace::EventType::ThreadStart,
         parent == trace::kNoThread ? trace::kNoObject
                                    : static_cast<trace::ObjectId>(parent));
}

trace::ThreadId Recorder::ensure_current_thread() {
  if (streaming_.load(std::memory_order_acquire)) {
    if (StreamBuffer* buffer = current_stream_buffer()) return buffer->tid;
  } else if (ThreadBuffer* buffer = current_buffer()) {
    return buffer->tid;
  }
  const trace::ThreadId tid = allocate_thread();
  bind_current_thread(tid, trace::kNoThread);
  return tid;
}

Recorder::ThreadBuffer* Recorder::current_buffer() {
  const TlsBinding& binding = tls_binding;
  if (binding.recorder != this ||
      binding.epoch != epoch_.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  return static_cast<ThreadBuffer*>(binding.buffer);
}

Recorder::StreamBuffer* Recorder::current_stream_buffer() {
  const TlsBinding& binding = tls_binding;
  if (binding.recorder != this ||
      binding.epoch != epoch_.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  return static_cast<StreamBuffer*>(binding.buffer);
}

void Recorder::thread_exit() {
  record(trace::EventType::ThreadExit, trace::kNoObject);
}

void Recorder::thread_exit_on_destroy() noexcept {
  if (!streaming_.load(std::memory_order_acquire) ||
      shutdown_.load(std::memory_order_acquire)) {
    return;
  }
  StreamBuffer* buffer = current_stream_buffer();
  if (buffer == nullptr || buffer->saw_exit.load(std::memory_order_relaxed)) {
    return;
  }
  // A fresh timestamp (not last_ts): the thread died *after* its last
  // recorded event, and the gap is real time its open critical sections
  // were held.
  record(trace::EventType::ThreadExit, trace::kNoObject);
}

void Recorder::note_partial_interposition() noexcept {
  warn_partial_interpose_.fetch_add(1, std::memory_order_relaxed);
}

void Recorder::record(trace::EventType type, trace::ObjectId object,
                      std::uint64_t arg) {
  record_at(type, util::now_ns(), object, arg);
}

void Recorder::record_at(trace::EventType type, std::uint64_t ts,
                         trace::ObjectId object, std::uint64_t arg) {
  if (util::fault::enabled()) util::fault::on_event();
  if (shutdown_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (streaming_.load(std::memory_order_acquire)) {
    StreamBuffer* buffer = current_stream_buffer();
    if (buffer == nullptr) {
      ensure_current_thread();
      buffer = current_stream_buffer();
    }
    if (buffer == nullptr) {  // registry full or bound during teardown
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    stream_append(*buffer,
                  trace::Event{ts, object, arg, type, 0, buffer->tid});
    return;
  }
  ThreadBuffer* buffer = current_buffer();
  if (buffer == nullptr) {
    ensure_current_thread();
    buffer = current_buffer();
  }
  if (buffer == nullptr) {  // binding failed mid-teardown: fail soft
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->events.push_back(trace::Event{ts, object, arg, type, 0, buffer->tid});
}

void Recorder::stream_append(StreamBuffer& buffer, const trace::Event& event) {
  trace::Event e = event;
  // Per-thread monotone clamp at record time: the clean-exit repair of
  // collect() never runs when chunks are already on disk.
  if (e.ts < buffer.clamp_ts) {
    e.ts = buffer.clamp_ts;
  } else {
    buffer.clamp_ts = e.ts;
  }
  std::uint32_t half = buffer.active;
  std::uint32_t c = buffer.count[half].load(std::memory_order_relaxed);
  if (c == buffer.capacity) {
    // Publish the full half for the flusher and flip to the other one.
    if (!buffer.full[half].load(std::memory_order_relaxed)) {
      buffer.publish_seq[half].store(buffer.next_seq++,
                                     std::memory_order_relaxed);
      buffer.full[half].store(true, std::memory_order_release);
    }
    buffer.active ^= 1;
    half = buffer.active;
    if (buffer.full[half].load(std::memory_order_acquire)) {
      // Flusher starved: both halves full. Drop instead of blocking.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    c = buffer.count[half].load(std::memory_order_relaxed);
  }
  buffer.half[half][c] = e;
  buffer.count[half].store(c + 1, std::memory_order_release);
  buffer.last_ts.store(e.ts, std::memory_order_relaxed);
  if (e.type == trace::EventType::ThreadExit) {
    buffer.saw_exit.store(true, std::memory_order_relaxed);
  }
}

void Recorder::name_object(trace::ObjectId object, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = object_names_.try_emplace(object, name);
  if (!inserted) {
    if (it->second == name) return;  // idempotent re-registration
    it->second = name;               // last write wins
  }
  if (streaming_.load(std::memory_order_acquire) && sink_ != nullptr &&
      !shutdown_.load(std::memory_order_acquire)) {
    sink_->write_object_name(object, name);
  }
}

void Recorder::name_thread(trace::ThreadId tid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = thread_names_.try_emplace(tid, name);
  if (!inserted) {
    if (it->second == name) return;
    it->second = name;
  }
  if (streaming_.load(std::memory_order_acquire) && sink_ != nullptr &&
      !shutdown_.load(std::memory_order_acquire)) {
    sink_->write_thread_name(tid, name);
  }
}

std::uint64_t Recorder::register_call_stack(const std::uint64_t* pcs,
                                            std::size_t depth) {
  if (depth == 0 || pcs == nullptr ||
      shutdown_.load(std::memory_order_acquire)) {
    return 0;
  }
  if (depth > trace::kMaxCallStackDepth) depth = trace::kMaxCallStackDepth;
  std::vector<std::uint64_t> chain(pcs, pcs + depth);
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t next_id = call_stack_ids_.size() + 1;
  auto [it, inserted] = call_stack_ids_.try_emplace(std::move(chain), next_id);
  if (inserted && streaming_.load(std::memory_order_acquire) &&
      sink_ != nullptr && !shutdown_.load(std::memory_order_acquire)) {
    sink_->write_call_stack(it->second, it->first.data(), it->first.size());
  }
  return it->second;
}

std::size_t Recorder::event_count() const {
  if (streaming_.load(std::memory_order_acquire)) {
    std::size_t total = 0;
    const std::uint32_t n = stream_count_.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < n; ++i) {
      const StreamBuffer* buffer =
          stream_registry_[i].load(std::memory_order_acquire);
      if (buffer == nullptr) continue;
      total += buffer->count[0].load(std::memory_order_relaxed);
      total += buffer->count[1].load(std::memory_order_relaxed);
    }
    return total;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  return total;
}

trace::Trace Recorder::collect() {
  CLA_CHECK(!streaming_.load(std::memory_order_acquire),
            "collect() is invalid in streaming mode (the trace is on disk)");
  std::lock_guard<std::mutex> lock(mutex_);
  trace::Trace out;

  std::uint64_t min_ts = ~0ull;
  for (const auto& buffer : buffers_) {
    if (!buffer->events.empty()) min_ts = std::min(min_ts, buffer->events.front().ts);
  }
  if (min_ts == ~0ull) min_ts = 0;

  for (auto& buffer : buffers_) {
    if (buffer->events.empty()) continue;
    // Per-thread timestamps must be monotone; rdtsc can regress slightly
    // on some VMs / across calibration, so repair the raw stream first —
    // doing this after the shift would propagate an underflow instead.
    for (std::size_t i = 1; i < buffer->events.size(); ++i) {
      if (buffer->events[i].ts < buffer->events[i - 1].ts)
        buffer->events[i].ts = buffer->events[i - 1].ts;
    }
    for (auto& event : buffer->events) {
      event.ts = event.ts > min_ts ? event.ts - min_ts : 0;
    }
    if (buffer->events.back().type != trace::EventType::ThreadExit) {
      buffer->events.push_back(trace::Event{buffer->events.back().ts,
                                            trace::kNoObject, trace::kNoArg,
                                            trace::EventType::ThreadExit, 0,
                                            buffer->tid});
    }
    out.add_thread_stream(buffer->tid, std::move(buffer->events));
  }
  for (auto& [object, name] : object_names_) out.set_object_name(object, name);
  for (auto& [tid, name] : thread_names_) out.set_thread_name(tid, name);
  for (const auto& [chain, id] : call_stack_ids_) {
    out.set_call_stack(id, chain);
    for (const std::uint64_t pc : chain) {
      if (std::string sym = symbolize_pc(pc); !sym.empty()) {
        out.set_frame_symbol(pc, std::move(sym));
      }
    }
  }
  out.set_dropped_events(dropped_.load(std::memory_order_relaxed));

  buffers_.clear();
  object_names_.clear();
  thread_names_.clear();
  call_stack_ids_.clear();
  next_tid_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  epoch_.store(next_binding_epoch(), std::memory_order_relaxed);
  return out;
}

void Recorder::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  object_names_.clear();
  thread_names_.clear();
  call_stack_ids_.clear();
  next_tid_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  epoch_.store(next_binding_epoch(), std::memory_order_relaxed);
}

// ---- streaming mode ------------------------------------------------------

void Recorder::start_streaming(const std::string& path,
                               std::size_t buffer_events,
                               std::uint32_t version,
                               std::uint64_t ring_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  CLA_CHECK(!streaming_.load(std::memory_order_acquire),
            "recorder is already streaming");
  sink_ = std::make_unique<trace::ChunkedTraceWriter>(path, version,
                                                      ring_bytes);  // may throw
  stream_capacity_ = std::clamp<std::size_t>(buffer_events, 64, 1u << 22);
  stream_path_ = path;
  stream_version_ = version;
  stream_ring_bytes_ = ring_bytes;
  flusher_stop_.store(false, std::memory_order_release);
  streaming_.store(true, std::memory_order_release);
  epoch_.store(next_binding_epoch(), std::memory_order_relaxed);  // rebind legacy TLS
  g_stream_recorder.store(this, std::memory_order_release);
  // One process-wide registration; the handlers dispatch through
  // g_stream_recorder so later recorders (unit tests) are covered too.
  std::call_once(g_atfork_once, [] {
    pthread_atfork(&Recorder::atfork_prepare, &Recorder::atfork_parent,
                   &Recorder::atfork_child);
  });
  {
    // The flusher must never appear in the trace: suppress the hooks both
    // for its pthread_create and (inside flusher_main) for its lifetime.
    ScopedInternal internal;
    flusher_ = std::thread([this] { flusher_main(); });
  }
}

// ---- fork safety ---------------------------------------------------------

void Recorder::atfork_prepare() {
  ScopedInternal internal;
  if (Recorder* r = g_stream_recorder.load(std::memory_order_acquire)) {
    r->prepare_fork();
  }
}

void Recorder::atfork_parent() {
  ScopedInternal internal;
  if (Recorder* r = g_stream_recorder.load(std::memory_order_acquire)) {
    r->resume_parent();
  }
}

void Recorder::atfork_child() {
  ScopedInternal internal;
  if (Recorder* r = g_stream_recorder.load(std::memory_order_acquire)) {
    r->reinit_child();
  }
}

void Recorder::prepare_fork() {
  // Quiesce registration and the flusher so the child's snapshot of the
  // recorder (and of the trace file) is not mid-mutation. Lock order
  // matches name_object -> sink writes: mutex_ first, then the gate.
  mutex_.lock();
  flush_gate_.lock();
}

void Recorder::resume_parent() {
  flush_gate_.unlock();
  mutex_.unlock();
  if (streaming_.load(std::memory_order_acquire) &&
      !shutdown_.load(std::memory_order_acquire)) {
    warn_forks_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Recorder::reinit_child() {
  flush_gate_.unlock();
  mutex_.unlock();
  if (!streaming_.load(std::memory_order_acquire) ||
      shutdown_.load(std::memory_order_acquire)) {
    return;
  }
  // The flusher thread does not exist in the child; its std::thread
  // handle still claims joinable, so reset the handle in place (join or
  // assignment would be UB / terminate).
  new (&flusher_) std::thread();
  // Invalidate every inherited thread binding *before* freeing the
  // buffers they point to; only the forking thread survives, and it
  // re-registers on its next event.
  epoch_.store(next_binding_epoch(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < kMaxStreamThreads; ++i) {
    stream_registry_[i].store(nullptr, std::memory_order_relaxed);
  }
  stream_count_.store(0, std::memory_order_relaxed);
  stream_owned_.clear();
  thread_names_.clear();
  next_tid_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  io_dropped_.store(0, std::memory_order_relaxed);
  warn_forks_.store(0, std::memory_order_relaxed);
  // Drop the inherited sink (its close() only releases the shared fd —
  // the parent's already-flushed chunks stay untouched) and open this
  // process's own trace file. Nested forks compound the suffix.
  sink_.reset();
  stream_path_ += "." + std::to_string(::getpid());
  try {
    sink_ = std::make_unique<trace::ChunkedTraceWriter>(
        stream_path_, stream_version_, stream_ring_bytes_);
  } catch (...) {
    // Child cannot trace (unwritable dir after chroot/setuid...): record
    // nothing rather than crash the forked application.
    streaming_.store(false, std::memory_order_release);
    shutdown_.store(true, std::memory_order_release);
    return;
  }
  // Object identities (lock addresses) persist across fork; replay their
  // names so the child's trace is self-contained. Interned call stacks
  // (and their ids) persist the same way — the child's MutexAcquire
  // events keep referencing them.
  for (const auto& [object, name] : object_names_) {
    sink_->write_object_name(object, name);
  }
  for (const auto& [chain, id] : call_stack_ids_) {
    sink_->write_call_stack(id, chain.data(), chain.size());
  }
  flusher_stop_.store(false, std::memory_order_release);
  flusher_ = std::thread([this] { flusher_main(); });
}

void Recorder::flusher_main() {
  // The whole loop is recorder machinery: its flush_gate_ acquisitions
  // must not surface as trace events through the interposed hooks.
  ScopedInternal internal;
  const struct timespec pause{0, 200'000};  // 200us between drain sweeps
  std::uint64_t sweeps = 0;
  while (!flusher_stop_.load(std::memory_order_acquire)) {
    if (const std::uint32_t stall = util::fault::flusher_stall_ms();
        stall != 0) {
      const struct timespec ts{stall / 1000,
                               static_cast<long>(stall % 1000) * 1'000'000};
      nanosleep(&ts, nullptr);
    }
    {
      // The gate quiesces this sweep around fork(): the atfork prepare
      // handler takes it, so no writev is in flight while the file and
      // the buffers get duplicated into the child.
      std::lock_guard<std::mutex> gate(flush_gate_);
      const std::uint32_t n = stream_count_.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < n; ++i) {
        StreamBuffer* buffer =
            stream_registry_[i].load(std::memory_order_acquire);
        if (buffer == nullptr) continue;
        const bool full0 = buffer->full[0].load(std::memory_order_acquire);
        const bool full1 = buffer->full[1].load(std::memory_order_acquire);
        if (full0 && full1) {
          // Keep per-thread chunk order: lower publish sequence first.
          const std::uint64_t s0 =
              buffer->publish_seq[0].load(std::memory_order_relaxed);
          const std::uint64_t s1 =
              buffer->publish_seq[1].load(std::memory_order_relaxed);
          flush_half(*buffer, s0 < s1 ? 0 : 1);
          flush_half(*buffer, s0 < s1 ? 1 : 0);
        } else if (full0) {
          flush_half(*buffer, 0);
        } else if (full1) {
          flush_half(*buffer, 1);
        }
      }
      // Refresh the in-place Meta/RuntimeWarnings chunks every ~50ms so
      // live tailers and point-in-time snapshots see current loss counts
      // (ring retirement, IO drops) instead of zeros until process exit.
      // Both are bounded pwrites of already-allocated bytes.
      if (++sweeps % 256 == 0 &&
          !shutdown_.load(std::memory_order_acquire)) {
        write_stream_warnings();
        sink_->write_meta(dropped_.load(std::memory_order_relaxed) +
                              sink_->ring_retired_events(),
                          /*clean_close=*/false);
      }
    }
    nanosleep(&pause, nullptr);
  }
}

void Recorder::flush_half(StreamBuffer& buffer, unsigned half) {
  buffer.in_flight[half].store(true, std::memory_order_seq_cst);
  if (shutdown_.load(std::memory_order_seq_cst)) {
    // A crash handler owns the file now. Park with in_flight set so the
    // handler never writes a half we may already have started.
    return;
  }
  const std::uint32_t c = buffer.count[half].load(std::memory_order_acquire);
  const std::size_t wrote =
      sink_->write_events(buffer.tid, buffer.half[half].get(), c);
  if (wrote < c) {
    // The sink ran out of retry budget (disk full past the backoff
    // window): the unwritten tail is gone — count it, both in the meta
    // drop counter and in the IO-specific warning.
    dropped_.fetch_add(c - wrote, std::memory_order_relaxed);
    io_dropped_.fetch_add(c - wrote, std::memory_order_relaxed);
  }
  buffer.count[half].store(0, std::memory_order_release);
  buffer.full[half].store(false, std::memory_order_release);
  buffer.in_flight[half].store(false, std::memory_order_release);
}

void Recorder::finish_streaming() {
  if (!streaming_.load(std::memory_order_acquire)) return;
  // Teardown joins the flusher and must not record its own pthread use.
  ScopedInternal internal;
  flusher_stop_.store(true, std::memory_order_release);
  if (flusher_.joinable()) flusher_.join();
  if (shutdown_.exchange(true, std::memory_order_seq_cst)) return;

  const std::uint32_t n = stream_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    StreamBuffer* buffer = stream_registry_[i].load(std::memory_order_acquire);
    if (buffer == nullptr) continue;
    // Published halves first (they hold the older events), then the
    // partial active half.
    const std::uint64_t s0 = buffer->publish_seq[0].load(std::memory_order_relaxed);
    const std::uint64_t s1 = buffer->publish_seq[1].load(std::memory_order_relaxed);
    const bool full0 = buffer->full[0].load(std::memory_order_acquire);
    const bool full1 = buffer->full[1].load(std::memory_order_acquire);
    unsigned order[2] = {0, 1};
    if (full0 && full1) {
      order[0] = s0 < s1 ? 0 : 1;
      order[1] = s0 < s1 ? 1 : 0;
    } else if (full1) {
      order[0] = 1;
      order[1] = 0;
    }
    for (unsigned half : order) {
      const std::uint32_t c = buffer->count[half].load(std::memory_order_acquire);
      if (c > 0) {
        const std::size_t wrote =
            sink_->write_events(buffer->tid, buffer->half[half].get(), c);
        if (wrote < c) {
          dropped_.fetch_add(c - wrote, std::memory_order_relaxed);
          io_dropped_.fetch_add(c - wrote, std::memory_order_relaxed);
        }
      }
      buffer->count[half].store(0, std::memory_order_relaxed);
      buffer->full[half].store(false, std::memory_order_relaxed);
    }
    if (!buffer->saw_exit.load(std::memory_order_relaxed)) {
      const trace::Event exit_event{
          buffer->last_ts.load(std::memory_order_relaxed), trace::kNoObject,
          trace::kNoArg, trace::EventType::ThreadExit, 0, buffer->tid};
      if (sink_->write_events(buffer->tid, &exit_event, 1) < 1) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        io_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Lazy frame symbolization: resolve each distinct recorded PC exactly
  // once, here on the clean-exit path — never on the lock hot path. The
  // crash-spill handler skips this entirely (dladdr allocates and is not
  // async-signal-safe); a salvaged trace simply reports hex frames.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::set<std::uint64_t> pcs;
    for (const auto& [chain, id] : call_stack_ids_) {
      pcs.insert(chain.begin(), chain.end());
    }
    for (const std::uint64_t pc : pcs) {
      if (const std::string sym = symbolize_pc(pc); !sym.empty()) {
        sink_->write_frame_symbol(pc, sym);
      }
    }
  }
  write_stream_warnings();
  sink_->write_meta(dropped_.load(std::memory_order_relaxed) +
                        sink_->ring_retired_events(),
                    /*clean_close=*/true);
  sink_->close();
}

void Recorder::write_stream_warnings() {
  // Fixed stack array, no allocation: this also runs on the crash-spill
  // path inside fatal-signal handlers.
  trace::RuntimeWarning warnings[trace::kRuntimeWarningSlots];
  std::size_t n = 0;
  const auto add = [&](util::DiagCode code, std::uint64_t value) {
    if (value == 0 || n == trace::kRuntimeWarningSlots) return;
    warnings[n].code = static_cast<std::uint32_t>(code);
    warnings[n].value = value;
    ++n;
  };
  add(util::DiagCode::CLA_W_IO_RETRIED, sink_->io_retries());
  add(util::DiagCode::CLA_W_IO_DROPPED_EVENTS,
      io_dropped_.load(std::memory_order_relaxed));
  add(util::DiagCode::CLA_W_PARTIAL_INTERPOSITION,
      warn_partial_interpose_.load(std::memory_order_relaxed));
  add(util::DiagCode::CLA_W_FORKED_CHILD,
      warn_forks_.load(std::memory_order_relaxed));
  add(util::DiagCode::CLA_W_RING_RETIRED_EVENTS, sink_->ring_retired_events());
  add(util::DiagCode::CLA_W_RING_COMPACTION_NOOP,
      sink_->ring_compaction_noops());
  if (n > 0) sink_->write_warnings(warnings, n);
}

void Recorder::crash_spill() {
  // First caller wins; everyone else (including any racing recorder) sees
  // shutdown and drops. Deliberately lock-free and allocation-free: this
  // runs inside fatal-signal handlers.
  if (shutdown_.exchange(true, std::memory_order_seq_cst)) return;
  if (!streaming_.load(std::memory_order_acquire) || sink_ == nullptr) return;
  // Teardown write policy: single retry, no backoff stalls, no append
  // locking — a signal handler must never wait on state an interrupted
  // thread owns.
  sink_->set_teardown();

  const std::uint32_t n = stream_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    StreamBuffer* buffer = stream_registry_[i].load(std::memory_order_acquire);
    if (buffer == nullptr) continue;
    // Published-full halves carry the older events; write them (in
    // publish order) before the partial active half.
    const std::uint64_t s0 = buffer->publish_seq[0].load(std::memory_order_relaxed);
    const std::uint64_t s1 = buffer->publish_seq[1].load(std::memory_order_relaxed);
    const bool full0 = buffer->full[0].load(std::memory_order_acquire);
    const bool full1 = buffer->full[1].load(std::memory_order_acquire);
    unsigned order[2] = {0, 1};
    if (full0 && full1) {
      order[0] = s0 < s1 ? 0 : 1;
      order[1] = s0 < s1 ? 1 : 0;
    } else if (full1) {
      order[0] = 1;
      order[1] = 0;
    }
    for (unsigned half : order) {
      if (buffer->in_flight[half].load(std::memory_order_seq_cst)) {
        continue;  // the flusher may already be writing this half
      }
      const std::uint32_t c = buffer->count[half].load(std::memory_order_acquire);
      if (c > 0) {
        const std::size_t wrote =
            sink_->write_events(buffer->tid, buffer->half[half].get(), c);
        if (wrote < c) {
          dropped_.fetch_add(c - wrote, std::memory_order_relaxed);
          io_dropped_.fetch_add(c - wrote, std::memory_order_relaxed);
        }
      }
    }
  }
  write_stream_warnings();
  sink_->write_meta(dropped_.load(std::memory_order_relaxed) +
                        sink_->ring_retired_events(),
                    /*clean_close=*/false);
  // No close(): a concurrent flusher writev must not hit a recycled fd.
  // The kernel flushes and closes on process death either way.
}

}  // namespace cla::rt
