#include "cla/runtime/recorder.hpp"

#include <algorithm>

#include "cla/util/clock.hpp"
#include "cla/util/error.hpp"

namespace cla::rt {

namespace {

struct TlsBinding {
  Recorder* recorder = nullptr;
  void* buffer = nullptr;
  std::uint64_t epoch = 0;
};

thread_local TlsBinding tls_binding;

}  // namespace

Recorder& Recorder::instance() {
  static Recorder recorder;
  return recorder;
}

trace::ThreadId Recorder::allocate_thread() {
  return next_tid_.fetch_add(1, std::memory_order_relaxed);
}

void Recorder::bind_current_thread(trace::ThreadId tid, trace::ThreadId parent) {
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = tid;
  buffer->events.reserve(1024);
  ThreadBuffer* raw = buffer.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::move(buffer));
  }
  tls_binding = TlsBinding{this, raw, epoch_.load(std::memory_order_relaxed)};
  raw->events.push_back(trace::Event{
      util::now_ns(),
      parent == trace::kNoThread ? trace::kNoObject
                                 : static_cast<trace::ObjectId>(parent),
      trace::kNoArg, trace::EventType::ThreadStart, 0, tid});
}

trace::ThreadId Recorder::ensure_current_thread() {
  if (ThreadBuffer* buffer = current_buffer()) return buffer->tid;
  const trace::ThreadId tid = allocate_thread();
  bind_current_thread(tid, trace::kNoThread);
  return tid;
}

Recorder::ThreadBuffer* Recorder::current_buffer() {
  const TlsBinding& binding = tls_binding;
  if (binding.recorder != this ||
      binding.epoch != epoch_.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  return static_cast<ThreadBuffer*>(binding.buffer);
}

void Recorder::thread_exit() {
  record(trace::EventType::ThreadExit, trace::kNoObject);
}

void Recorder::record(trace::EventType type, trace::ObjectId object,
                      std::uint64_t arg) {
  record_at(type, util::now_ns(), object, arg);
}

void Recorder::record_at(trace::EventType type, std::uint64_t ts,
                         trace::ObjectId object, std::uint64_t arg) {
  ThreadBuffer* buffer = current_buffer();
  if (buffer == nullptr) {
    ensure_current_thread();
    buffer = current_buffer();
  }
  buffer->events.push_back(trace::Event{ts, object, arg, type, 0, buffer->tid});
}

void Recorder::name_object(trace::ObjectId object, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  object_names_.emplace_back(object, std::move(name));
}

void Recorder::name_thread(trace::ThreadId tid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  thread_names_.emplace_back(tid, std::move(name));
}

std::size_t Recorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  return total;
}

trace::Trace Recorder::collect() {
  std::lock_guard<std::mutex> lock(mutex_);
  trace::Trace out;

  std::uint64_t min_ts = ~0ull;
  for (const auto& buffer : buffers_) {
    if (!buffer->events.empty()) min_ts = std::min(min_ts, buffer->events.front().ts);
  }
  if (min_ts == ~0ull) min_ts = 0;

  for (auto& buffer : buffers_) {
    if (buffer->events.empty()) continue;
    // Per-thread timestamps must be monotone; rdtsc can regress slightly
    // on some VMs / across calibration, so repair the raw stream first —
    // doing this after the shift would propagate an underflow instead.
    for (std::size_t i = 1; i < buffer->events.size(); ++i) {
      if (buffer->events[i].ts < buffer->events[i - 1].ts)
        buffer->events[i].ts = buffer->events[i - 1].ts;
    }
    for (auto& event : buffer->events) {
      event.ts = event.ts > min_ts ? event.ts - min_ts : 0;
    }
    if (buffer->events.back().type != trace::EventType::ThreadExit) {
      buffer->events.push_back(trace::Event{buffer->events.back().ts,
                                            trace::kNoObject, trace::kNoArg,
                                            trace::EventType::ThreadExit, 0,
                                            buffer->tid});
    }
    out.add_thread_stream(buffer->tid, std::move(buffer->events));
  }
  for (auto& [object, name] : object_names_) out.set_object_name(object, name);
  for (auto& [tid, name] : thread_names_) out.set_thread_name(tid, name);

  buffers_.clear();
  object_names_.clear();
  thread_names_.clear();
  next_tid_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void Recorder::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  object_names_.clear();
  thread_names_.clear();
  next_tid_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cla::rt
