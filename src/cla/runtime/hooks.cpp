#include "cla/runtime/hooks.hpp"

#include <cerrno>
#include <thread>
#include <vector>

#include "cla/util/error.hpp"

namespace cla::rt {

using trace::EventType;

InstrumentedMutex::InstrumentedMutex(std::string name) {
  pthread_mutex_init(&mutex_, nullptr);
  if (!name.empty()) Recorder::instance().name_object(id(), std::move(name));
}

InstrumentedMutex::~InstrumentedMutex() { pthread_mutex_destroy(&mutex_); }

void InstrumentedMutex::lock() {
  Recorder& recorder = Recorder::instance();
  recorder.record(EventType::MutexAcquire, id());  // MAGIC: acquire the lock
  bool contended = false;
  if (pthread_mutex_trylock(&mutex_) == EBUSY) {
    contended = true;  // MAGIC: lock contention
    const int rc = pthread_mutex_lock(&mutex_);
    CLA_CHECK(rc == 0, "pthread_mutex_lock failed");
  }
  // MAGIC: obtain the lock
  recorder.record(EventType::MutexAcquired, id(), contended ? 1 : 0);
}

void InstrumentedMutex::unlock() {
  const int rc = pthread_mutex_unlock(&mutex_);
  CLA_CHECK(rc == 0, "pthread_mutex_unlock failed");
  // MAGIC after the real unlock: no extra time inside the critical section.
  Recorder::instance().record(EventType::MutexReleased, id());
}

InstrumentedBarrier::InstrumentedBarrier(std::uint32_t participants,
                                         std::string name)
    : participants_(participants) {
  CLA_CHECK(participants > 0, "barrier needs at least one participant");
  pthread_barrier_init(&barrier_, nullptr, participants);
  if (!name.empty()) Recorder::instance().name_object(id(), std::move(name));
}

InstrumentedBarrier::~InstrumentedBarrier() { pthread_barrier_destroy(&barrier_); }

void InstrumentedBarrier::wait() {
  Recorder& recorder = Recorder::instance();
  const std::uint64_t order = arrivals_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t episode = order / participants_;
  // MAGIC before the wait: the arrival time identifies the last arriver.
  recorder.record(EventType::BarrierArrive, id(), episode);
  pthread_barrier_wait(&barrier_);
  recorder.record(EventType::BarrierLeave, id(), episode);
}

InstrumentedCond::InstrumentedCond(std::string name) {
  pthread_cond_init(&cond_, nullptr);
  if (!name.empty()) Recorder::instance().name_object(id(), std::move(name));
}

InstrumentedCond::~InstrumentedCond() { pthread_cond_destroy(&cond_); }

void InstrumentedCond::wait(InstrumentedMutex& mutex) {
  Recorder& recorder = Recorder::instance();
  // cond_wait atomically releases the mutex; trace that release so lock
  // hold times stay correct.
  recorder.record(EventType::MutexReleased, mutex.id());
  recorder.record(EventType::CondWaitBegin, id(), mutex.id());
  pthread_cond_wait(&cond_, mutex.native());
  // MAGIC: signal received (paper Fig. 4, "woken up by signal").
  recorder.record(EventType::CondWaitEnd, id(), mutex.id());
  recorder.record(EventType::MutexAcquire, mutex.id());
  // The re-acquire may well have contended, but pthread_cond_wait hides
  // it; record uncontended so the analyzer does not invent a block.
  recorder.record(EventType::MutexAcquired, mutex.id(), 0);
}

void InstrumentedCond::signal() {
  // MAGIC before: "signal sent already" must be visible to the waiter's
  // wake-up matching, so timestamp the signal no later than the wake.
  Recorder::instance().record(EventType::CondSignal, id());
  pthread_cond_signal(&cond_);
}

void InstrumentedCond::broadcast() {
  Recorder::instance().record(EventType::CondBroadcast, id());
  pthread_cond_broadcast(&cond_);
}

void phase_begin() {
  Recorder::instance().record(EventType::PhaseBegin, trace::kNoObject);
}

void phase_end() {
  Recorder::instance().record(EventType::PhaseEnd, trace::kNoObject);
}

void run_instrumented_threads(std::uint32_t thread_count,
                              const std::function<void(std::uint32_t)>& body) {
  Recorder& recorder = Recorder::instance();
  const trace::ThreadId parent = recorder.ensure_current_thread();

  struct Worker {
    trace::ThreadId tid;
    std::thread thread;
  };
  std::vector<Worker> workers;
  workers.reserve(thread_count);
  for (std::uint32_t i = 0; i < thread_count; ++i) {
    const trace::ThreadId child = recorder.allocate_thread();
    recorder.record(EventType::ThreadCreate, static_cast<trace::ObjectId>(child));
    workers.push_back(Worker{
        child, std::thread([&recorder, &body, child, parent, i] {
          recorder.bind_current_thread(child, parent);
          body(i);
          recorder.thread_exit();
        })});
  }
  for (auto& worker : workers) {
    recorder.record(EventType::JoinBegin, static_cast<trace::ObjectId>(worker.tid));
    worker.thread.join();
    recorder.record(EventType::JoinEnd, static_cast<trace::ObjectId>(worker.tid));
  }
}

}  // namespace cla::rt
