// Event recorder — the in-process half of the instrumentation module
// (paper §IV.A).
//
// Threads register once and then append events to a thread-local buffer
// with one timestamp read and one store per MAGIC() point; no locks are
// taken on the hot path.
//
// Two collection modes:
//
//  * Legacy in-memory mode (default): buffers grow until the run ends and
//    collect() stitches them into a trace::Trace.
//
//  * Streaming mode (start_streaming): each thread owns a pair of bounded
//    event buffers. When the active half fills, the thread publishes it
//    and flips to the other half; a dedicated flusher thread drains
//    published halves to a ChunkedTraceWriter (`.clat` v2 chunks), so app
//    threads never block on IO. If both halves are full (flusher starved)
//    the event is dropped and counted instead of blocking or growing.
//    crash_spill() writes every published-and-partial buffer with only
//    async-signal-safe operations, so a fatal-signal handler can save the
//    run's tail; finish_streaming() is the clean-exit path (synthesizes
//    missing ThreadExit events and a clean-close Meta chunk).
//
// Recording never aborts the host application: if a thread cannot be
// bound (registration races teardown) or a buffer has no room, the event
// is dropped and counted; the count travels in the trace header.
//
// Hostile-process survival (streaming mode):
//
//  * fork(): pthread_atfork handlers quiesce the flusher and registration
//    around the fork. The parent resumes untouched (and counts the fork
//    in a CLA_W_FORKED_CHILD warning); the child — which inherits the
//    buffers but not the flusher thread — drops all inherited bindings
//    and re-targets a fresh `<path>.<pid>` trace file, so parent and
//    child each produce one valid stream with no duplicated events.
//
//  * pthread_cancel / pthread_exit: a TSD destructor records the missing
//    ThreadExit when a bound thread dies without reaching thread_exit(),
//    closing its open critical sections on disk instead of leaving a
//    dangling lock-held stream for the repair pass.
//
//  * Write failures: the sink retries/backs off internally; events that
//    still fail to land are accounted to dropped_events() and surfaced
//    through the trace's RuntimeWarnings chunk (CLA_W_IO_*).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cla/trace/trace.hpp"
#include "cla/trace/trace_io.hpp"

namespace cla::rt {

class Recorder {
 public:
  Recorder();
  ~Recorder();  // stops the flusher and closes the stream if still open
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Process-wide recorder used by the instrumented pthread wrappers and
  /// the LD_PRELOAD interposer.
  static Recorder& instance();

  /// True while the calling thread is executing recorder-internal
  /// machinery (the flusher loop, atfork handlers, flusher re-spawn). The
  /// interposer consults this and disarms its hooks, so the recorder's
  /// own pthread use — flush_gate_, std::thread creation — never leaks
  /// synthetic threads or recorder-internal locks into the trace.
  static bool current_thread_internal() noexcept;

  /// RAII marker for recorder-internal execution on the calling thread.
  class ScopedInternal {
   public:
    ScopedInternal() noexcept;
    ~ScopedInternal();
    ScopedInternal(const ScopedInternal&) = delete;
    ScopedInternal& operator=(const ScopedInternal&) = delete;

   private:
    bool prev_;
  };

  /// Reserves a thread id for a thread that is about to start (called by
  /// the creating thread so ThreadCreate can reference the child).
  trace::ThreadId allocate_thread();

  /// Binds the calling OS thread to `tid` and records ThreadStart.
  /// `parent` is the creating thread (kNoThread for the initial thread).
  void bind_current_thread(trace::ThreadId tid, trace::ThreadId parent);

  /// Registers the calling thread if it is unknown (allocates an id with
  /// no recorded parent) and returns its id. Cheap when already bound.
  trace::ThreadId ensure_current_thread();

  /// Records ThreadExit for the calling thread.
  void thread_exit();

  /// TSD-destructor hook: records ThreadExit for the calling thread if it
  /// is bound, streaming and has not recorded one — the cancel/implicit-
  /// exit cleanup path. No-op otherwise.
  void thread_exit_on_destroy() noexcept;

  /// Counts one interposed call that hit an unresolved real symbol
  /// (surfaced as a CLA_W_PARTIAL_INTERPOSITION runtime warning).
  void note_partial_interposition() noexcept;

  /// Appends an event for the calling thread; timestamps with now_ns().
  void record(trace::EventType type, trace::ObjectId object,
              std::uint64_t arg = trace::kNoArg);

  /// Records with an explicit timestamp (used when the timestamp must be
  /// taken before other bookkeeping, e.g. barrier arrival). Fails soft:
  /// if the thread cannot be bound or the buffers are full, the event is
  /// dropped and dropped_events() incremented — never UB, never a throw.
  void record_at(trace::EventType type, std::uint64_t ts,
                 trace::ObjectId object, std::uint64_t arg = trace::kNoArg);

  /// Attaches a name (last write wins; re-registering is idempotent).
  void name_object(trace::ObjectId object, std::string name);
  void name_thread(trace::ThreadId tid, std::string name);

  /// Interns an acquisition call stack (`pcs[0..depth)`, innermost frame
  /// first) and returns its stable id (>= 1); identical chains dedupe to
  /// one id. In streaming mode the first sighting emits a CallStacks
  /// chunk. Takes mutex_ — callers (the interposer's lock hooks) are on a
  /// slow path already (about to block on a mutex) and must not hold
  /// recorder-internal locks. Returns 0 (= "no stack") when depth is 0 or
  /// the recorder has shut down.
  std::uint64_t register_call_stack(const std::uint64_t* pcs,
                                    std::size_t depth);

  /// Events dropped at record time since the last reset/collect.
  std::uint64_t dropped_events() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Number of events currently buffered (all threads, unflushed).
  std::size_t event_count() const;

  // ---- legacy in-memory collection ----

  /// Assembles the trace: timestamps are shifted so the earliest event is
  /// at t=0, and any thread missing a ThreadExit gets one at its last
  /// event's timestamp. Buffers are consumed. Only valid outside
  /// streaming mode.
  trace::Trace collect();

  /// Drops all buffered events and thread bindings (between runs). The
  /// calling thread must re-register afterwards.
  void reset();

  // ---- streaming (crash-resilient) mode ----

  /// Switches to streaming mode: opens `path` as a chunked trace (v2 raw
  /// chunks or compact v3 per `version`) and starts the flusher thread.
  /// `buffer_events` bounds each half of every thread's double buffer
  /// (clamped to [64, 1<<22]). A non-zero `ring_bytes` caps the trace's
  /// on-disk size: the writer retires the oldest complete chunks as
  /// counted loss (CLA_W_RING_RETIRED_EVENTS) when the file outgrows the
  /// cap. Must be called before any thread registers events to be
  /// streamed; throws cla::util::Error if the file cannot be opened or
  /// `version` is not a chunked format.
  void start_streaming(const std::string& path, std::size_t buffer_events,
                       std::uint32_t version = trace::kTraceVersion,
                       std::uint64_t ring_bytes = 0);

  bool streaming() const noexcept {
    return streaming_.load(std::memory_order_acquire);
  }

  /// Path of the stream this process is writing (the fork handler gives
  /// each child its own `<path>.<pid>`). Empty outside streaming mode.
  const std::string& stream_path() const noexcept { return stream_path_; }

  /// Clean-exit path: stops the flusher, drains every buffer, synthesizes
  /// missing ThreadExit events, writes the clean-close Meta chunk and
  /// closes the file. Idempotent.
  void finish_streaming();

  /// Best-effort crash-time spill; async-signal-safe (no locks, no
  /// allocation, no iostreams). Writes all safely readable buffers plus a
  /// Meta chunk without the clean flag, then flags the recorder shut down
  /// so subsequent record() calls drop. Safe to call from a fatal-signal
  /// handler; also the `_exit` interposition path. Idempotent — the first
  /// caller wins, later callers return immediately.
  void crash_spill();

  /// True once crash_spill() ran (recording is permanently shut down).
  bool shut_down() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  struct ThreadBuffer;    // legacy unbounded buffer
  struct StreamBuffer;    // streaming double buffer

  ThreadBuffer* current_buffer();
  StreamBuffer* current_stream_buffer();
  void stream_append(StreamBuffer& buffer, const trace::Event& event);
  void flusher_main();
  void flush_half(StreamBuffer& buffer, unsigned half);
  void write_stream_warnings();

  // pthread_atfork trampolines (dispatch to the streaming recorder).
  static void atfork_prepare();
  static void atfork_parent();
  static void atfork_child();
  void prepare_fork();
  void resume_parent();
  void reinit_child();

  mutable std::mutex mutex_;  // guards registration and collection only
  // Held by the flusher around each drain sweep so the fork handler can
  // quiesce in-flight IO (lock order: mutex_ then flush_gate_).
  std::mutex flush_gate_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<trace::ThreadId> next_tid_{0};
  std::map<trace::ObjectId, std::string> object_names_;
  std::map<trace::ThreadId, std::string> thread_names_;
  // Call-stack intern table: pc chain -> id (ids start at 1, streamed as
  // CallStacks chunks; replayed to the child's sink after fork).
  std::map<std::vector<std::uint64_t>, std::uint64_t> call_stack_ids_;
  std::atomic<std::uint64_t> epoch_{0};  // invalidates thread-local caches
  std::atomic<std::uint64_t> dropped_{0};

  // Streaming state. The registry is a fixed array of atomic slots so the
  // crash handler can walk it without taking mutex_.
  static constexpr std::size_t kMaxStreamThreads = 4096;
  std::atomic<bool> streaming_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> flusher_stop_{false};
  std::size_t stream_capacity_ = 0;
  std::string stream_path_;
  std::uint32_t stream_version_ = trace::kTraceVersion;
  std::uint64_t stream_ring_bytes_ = 0;
  std::atomic<std::uint64_t> io_dropped_{0};   // events lost to failed writes
  std::atomic<std::uint64_t> warn_partial_interpose_{0};
  std::atomic<std::uint64_t> warn_forks_{0};
  std::unique_ptr<trace::ChunkedTraceWriter> sink_;
  std::vector<std::unique_ptr<StreamBuffer>> stream_owned_;
  std::atomic<StreamBuffer*> stream_registry_[kMaxStreamThreads] = {};
  std::atomic<std::uint32_t> stream_count_{0};
  std::thread flusher_;
};

}  // namespace cla::rt
