// Event recorder — the in-process half of the instrumentation module
// (paper §IV.A).
//
// Threads register once and then append events to a thread-local buffer
// with one timestamp read and one store per MAGIC() point; no locks are
// taken on the hot path.
//
// Two collection modes:
//
//  * Legacy in-memory mode (default): buffers grow until the run ends and
//    collect() stitches them into a trace::Trace.
//
//  * Streaming mode (start_streaming): each thread owns a pair of bounded
//    event buffers. When the active half fills, the thread publishes it
//    and flips to the other half; a dedicated flusher thread drains
//    published halves to a ChunkedTraceWriter (`.clat` v2 chunks), so app
//    threads never block on IO. If both halves are full (flusher starved)
//    the event is dropped and counted instead of blocking or growing.
//    crash_spill() writes every published-and-partial buffer with only
//    async-signal-safe operations, so a fatal-signal handler can save the
//    run's tail; finish_streaming() is the clean-exit path (synthesizes
//    missing ThreadExit events and a clean-close Meta chunk).
//
// Recording never aborts the host application: if a thread cannot be
// bound (registration races teardown) or a buffer has no room, the event
// is dropped and counted; the count travels in the trace header.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cla/trace/trace.hpp"
#include "cla/trace/trace_io.hpp"

namespace cla::rt {

class Recorder {
 public:
  Recorder();
  ~Recorder();  // stops the flusher and closes the stream if still open
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Process-wide recorder used by the instrumented pthread wrappers and
  /// the LD_PRELOAD interposer.
  static Recorder& instance();

  /// Reserves a thread id for a thread that is about to start (called by
  /// the creating thread so ThreadCreate can reference the child).
  trace::ThreadId allocate_thread();

  /// Binds the calling OS thread to `tid` and records ThreadStart.
  /// `parent` is the creating thread (kNoThread for the initial thread).
  void bind_current_thread(trace::ThreadId tid, trace::ThreadId parent);

  /// Registers the calling thread if it is unknown (allocates an id with
  /// no recorded parent) and returns its id. Cheap when already bound.
  trace::ThreadId ensure_current_thread();

  /// Records ThreadExit for the calling thread.
  void thread_exit();

  /// Appends an event for the calling thread; timestamps with now_ns().
  void record(trace::EventType type, trace::ObjectId object,
              std::uint64_t arg = trace::kNoArg);

  /// Records with an explicit timestamp (used when the timestamp must be
  /// taken before other bookkeeping, e.g. barrier arrival). Fails soft:
  /// if the thread cannot be bound or the buffers are full, the event is
  /// dropped and dropped_events() incremented — never UB, never a throw.
  void record_at(trace::EventType type, std::uint64_t ts,
                 trace::ObjectId object, std::uint64_t arg = trace::kNoArg);

  /// Attaches a name (last write wins; re-registering is idempotent).
  void name_object(trace::ObjectId object, std::string name);
  void name_thread(trace::ThreadId tid, std::string name);

  /// Events dropped at record time since the last reset/collect.
  std::uint64_t dropped_events() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Number of events currently buffered (all threads, unflushed).
  std::size_t event_count() const;

  // ---- legacy in-memory collection ----

  /// Assembles the trace: timestamps are shifted so the earliest event is
  /// at t=0, and any thread missing a ThreadExit gets one at its last
  /// event's timestamp. Buffers are consumed. Only valid outside
  /// streaming mode.
  trace::Trace collect();

  /// Drops all buffered events and thread bindings (between runs). The
  /// calling thread must re-register afterwards.
  void reset();

  // ---- streaming (crash-resilient) mode ----

  /// Switches to streaming mode: opens `path` as a chunked trace (v2 raw
  /// chunks or compact v3 per `version`) and starts the flusher thread.
  /// `buffer_events` bounds each half of every thread's double buffer
  /// (clamped to [64, 1<<22]). Must be called before any thread registers
  /// events to be streamed; throws cla::util::Error if the file cannot be
  /// opened or `version` is not a chunked format.
  void start_streaming(const std::string& path, std::size_t buffer_events,
                       std::uint32_t version = trace::kTraceVersion);

  bool streaming() const noexcept {
    return streaming_.load(std::memory_order_acquire);
  }

  /// Clean-exit path: stops the flusher, drains every buffer, synthesizes
  /// missing ThreadExit events, writes the clean-close Meta chunk and
  /// closes the file. Idempotent.
  void finish_streaming();

  /// Best-effort crash-time spill; async-signal-safe (no locks, no
  /// allocation, no iostreams). Writes all safely readable buffers plus a
  /// Meta chunk without the clean flag, then flags the recorder shut down
  /// so subsequent record() calls drop. Safe to call from a fatal-signal
  /// handler; also the `_exit` interposition path. Idempotent — the first
  /// caller wins, later callers return immediately.
  void crash_spill();

  /// True once crash_spill() ran (recording is permanently shut down).
  bool shut_down() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  struct ThreadBuffer;    // legacy unbounded buffer
  struct StreamBuffer;    // streaming double buffer

  ThreadBuffer* current_buffer();
  StreamBuffer* current_stream_buffer();
  void stream_append(StreamBuffer& buffer, const trace::Event& event);
  void flusher_main();
  void flush_half(StreamBuffer& buffer, unsigned half);

  mutable std::mutex mutex_;  // guards registration and collection only
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<trace::ThreadId> next_tid_{0};
  std::map<trace::ObjectId, std::string> object_names_;
  std::map<trace::ThreadId, std::string> thread_names_;
  std::atomic<std::uint64_t> epoch_{0};  // invalidates thread-local caches
  std::atomic<std::uint64_t> dropped_{0};

  // Streaming state. The registry is a fixed array of atomic slots so the
  // crash handler can walk it without taking mutex_.
  static constexpr std::size_t kMaxStreamThreads = 4096;
  std::atomic<bool> streaming_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> flusher_stop_{false};
  std::size_t stream_capacity_ = 0;
  std::unique_ptr<trace::ChunkedTraceWriter> sink_;
  std::vector<std::unique_ptr<StreamBuffer>> stream_owned_;
  std::atomic<StreamBuffer*> stream_registry_[kMaxStreamThreads] = {};
  std::atomic<std::uint32_t> stream_count_{0};
  std::thread flusher_;
};

}  // namespace cla::rt
