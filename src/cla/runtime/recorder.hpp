// Event recorder — the in-process half of the instrumentation module
// (paper §IV.A).
//
// Threads register once and then append events to a thread-local buffer
// with one timestamp read and one store per MAGIC() point; no locks are
// taken on the hot path. When the run completes, collect() stitches the
// per-thread buffers into a trace::Trace (and the LD_PRELOAD interposer
// flushes it to a .clat file).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cla/trace/trace.hpp"

namespace cla::rt {

class Recorder {
 public:
  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Process-wide recorder used by the instrumented pthread wrappers and
  /// the LD_PRELOAD interposer.
  static Recorder& instance();

  /// Reserves a thread id for a thread that is about to start (called by
  /// the creating thread so ThreadCreate can reference the child).
  trace::ThreadId allocate_thread();

  /// Binds the calling OS thread to `tid` and records ThreadStart.
  /// `parent` is the creating thread (kNoThread for the initial thread).
  void bind_current_thread(trace::ThreadId tid, trace::ThreadId parent);

  /// Registers the calling thread if it is unknown (allocates an id with
  /// no recorded parent) and returns its id. Cheap when already bound.
  trace::ThreadId ensure_current_thread();

  /// Records ThreadExit for the calling thread.
  void thread_exit();

  /// Appends an event for the calling thread; timestamps with now_ns().
  void record(trace::EventType type, trace::ObjectId object,
              std::uint64_t arg = trace::kNoArg);

  /// Records with an explicit timestamp (used when the timestamp must be
  /// taken before other bookkeeping, e.g. barrier arrival).
  void record_at(trace::EventType type, std::uint64_t ts,
                 trace::ObjectId object, std::uint64_t arg = trace::kNoArg);

  void name_object(trace::ObjectId object, std::string name);
  void name_thread(trace::ThreadId tid, std::string name);

  /// Number of events currently buffered (all threads).
  std::size_t event_count() const;

  /// Assembles the trace: timestamps are shifted so the earliest event is
  /// at t=0, and any thread missing a ThreadExit gets one at its last
  /// event's timestamp. Buffers are consumed.
  trace::Trace collect();

  /// Drops all buffered events and thread bindings (between runs). The
  /// calling thread must re-register afterwards.
  void reset();

 private:
  struct ThreadBuffer {
    trace::ThreadId tid = 0;
    std::vector<trace::Event> events;
  };

  ThreadBuffer* current_buffer();

  mutable std::mutex mutex_;  // guards registration and collection only
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<trace::ThreadId> next_tid_{0};
  std::vector<std::pair<trace::ObjectId, std::string>> object_names_;
  std::vector<std::pair<trace::ThreadId, std::string>> thread_names_;
  std::atomic<std::uint64_t> epoch_{0};  // invalidates thread-local caches
};

}  // namespace cla::rt
