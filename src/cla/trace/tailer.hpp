// Fault-tolerant live tailer for a `.clat` file that is still being
// written (the always-on loop's read side).
//
// The strict readers (TraceStreamReader, MappedTrace) treat a missing
// clean-close marker or a torn final chunk as an error, because for an
// offline file that *is* an error. For a live file it just means "the
// writer has not caught up yet". TraceTailer makes that distinction: it
// consumes complete CRC-valid chunks as they land and classifies
// everything else —
//
//   * a partial chunk at end-of-file      -> Idle ("not yet", wait)
//   * no new bytes at all                 -> Idle (back off)
//   * CRC-bad bytes with data after them  -> resync: scan forward to the
//       next chunk magic and count the skipped bytes as loss
//   * the path's inode changed, or the    -> Rotated: reopen from the top
//       file shrank under us                 (ring compaction rename()s a
//                                            compacted file into place, a
//                                            restarted writer O_TRUNCs it)
//   * the path vanished                   -> Removed once the old fd is
//                                            fully drained
//   * a read failed past the retry budget -> IoError, position unchanged
//
// Reads go through an EINTR-restarting, bounded-retry pread that consults
// the CLA_FAULT_READ_* injection knobs (mirroring the write side), so
// every one of these transitions has a deterministic test.
//
// The in-place Meta/RuntimeWarnings chunks the streaming writer rewrites
// (drop counters, ring-retirement counts) are re-read on every poll; a
// rewrite torn mid-pread fails its CRC and the previous good value is
// kept. Polls honor an optional deadline: a poll that runs out of budget
// returns what it decoded and resumes from the same offset next time, so
// a stuck filesystem can never hang the caller.
//
// Each Progress delta is a trace::Trace fragment whose per-thread event
// runs append in on-disk order — exactly what IncrementalAnalyzer::append
// expects. One tailer per file; not thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cla/trace/trace.hpp"

namespace cla::trace {

class TraceTailer {
 public:
  struct Options {
    /// Per-poll time budget in milliseconds (0 = unbounded). A poll that
    /// exceeds it returns early with whatever it decoded so far.
    std::uint64_t poll_deadline_ms = 0;
    /// Bounds for suggested_backoff_ms(): exponential from `initial`,
    /// doubling per consecutive idle poll, capped at `max`.
    std::uint32_t backoff_initial_ms = 10;
    std::uint32_t backoff_max_ms = 1000;
  };

  enum class PollStatus {
    Idle,      ///< nothing new: file absent, torn tail, or no new chunks
    Progress,  ///< the delta carries new events / names / counters
    Rotated,   ///< file replaced or truncated under us; restart analysis
    Removed,   ///< file unlinked and fully drained; no new file appeared
    IoError,   ///< preamble corrupt or a read failed past the retry budget
  };

  /// What one Progress poll delivered. Event/name data arrives as a Trace
  /// fragment; the cumulative file-level counters (dropped events,
  /// runtime warnings) are exposed both raw and as deltas.
  struct Delta {
    Trace chunk;                      ///< new per-thread event runs + names
    std::uint64_t events = 0;         ///< events in `chunk`
    std::uint64_t dropped_delta = 0;  ///< growth of the Meta drop counter
    std::uint64_t skipped_bytes = 0;  ///< corrupt bytes resynced over
    bool clean_close = false;         ///< writer closed the stream cleanly
    /// Cumulative CLA_W_* counters from the RuntimeWarnings chunks.
    std::map<std::uint32_t, std::uint64_t> runtime_warnings;
  };

  explicit TraceTailer(std::string path);
  TraceTailer(std::string path, Options options);
  ~TraceTailer();

  TraceTailer(const TraceTailer&) = delete;
  TraceTailer& operator=(const TraceTailer&) = delete;

  /// Advances over everything new and complete in the file. `delta` is
  /// cleared first and filled only on Progress.
  PollStatus poll(Delta& delta);

  /// How long the caller should sleep before the next poll, grown
  /// exponentially across consecutive non-Progress polls.
  std::uint32_t suggested_backoff_ms() const noexcept;

  const std::string& path() const noexcept { return path_; }
  /// Bytes of the current file consumed so far (preamble + chunks).
  std::uint64_t consumed_bytes() const noexcept { return consumed_; }
  /// Rotations observed (each one restarts consumed_bytes from 0).
  std::uint64_t generation() const noexcept { return generation_; }
  /// True once a clean-close Meta chunk was read from the current file.
  bool writer_finished() const noexcept { return clean_close_; }
  /// Cumulative dropped-event count from the current file's Meta chunk.
  std::uint64_t dropped_events() const noexcept { return dropped_events_; }
  /// Total read retries (EINTR + transient errors) over the tailer's life.
  std::uint64_t io_retries() const noexcept { return io_retries_; }
  /// Total corrupt bytes skipped by resync over the tailer's life.
  std::uint64_t total_skipped_bytes() const noexcept { return skipped_total_; }

 private:
  enum class ReadResult { Ok, Short, Failed };

  ReadResult robust_pread(void* buf, std::size_t len, std::uint64_t offset,
                          std::size_t& got);
  bool open_file();
  void reset_for_rotation();
  bool deadline_hit(std::uint64_t start_ns) const;
  bool consume_chunk(std::uint32_t kind, const std::vector<unsigned char>& payload,
                     Delta& delta);
  void refresh_inplace_chunks(Delta& delta, bool& progress);

  std::string path_;
  Options options_;
  int fd_ = -1;
  std::uint64_t consumed_ = 0;
  std::uint64_t generation_ = 0;
  bool preamble_ok_ = false;
  std::uint32_t version_ = 0;
  bool clean_close_ = false;
  std::uint64_t dropped_events_ = 0;
  std::map<std::uint32_t, std::uint64_t> runtime_warnings_;
  /// File offsets of Meta / RuntimeWarnings chunks already consumed; the
  /// streaming writer rewrites these in place, so they are re-read every
  /// poll (bounded: a streamed file has exactly two).
  std::vector<std::uint64_t> inplace_offsets_;
  std::uint32_t idle_polls_ = 0;
  std::uint64_t io_retries_ = 0;
  std::uint64_t skipped_total_ = 0;
  std::vector<unsigned char> payload_buf_;
  std::vector<Event> event_buf_;
};

}  // namespace cla::trace
