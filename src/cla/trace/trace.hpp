// In-memory trace container: per-thread event streams plus name tables.
//
// This is the hand-off point of the paper's two-stage workflow (Fig. 3):
// the instrumentation module (or the simulator) produces a Trace, the
// analysis module consumes it.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "cla/trace/event.hpp"

namespace cla::trace {

/// A complete execution trace of one program run.
///
/// Invariants (checked by validate()):
///  - events of each thread are sorted by timestamp (stable, non-strict);
///  - thread 0 exists and every thread has a ThreadStart as its first and
///    a ThreadExit as its last event;
///  - mutex events per (thread, mutex) follow Acquire -> Acquired ->
///    Released cycles; barrier events alternate Arrive/Leave.
class Trace {
 public:
  Trace() = default;

  /// Appends an event to its thread's stream. Events must arrive in
  /// non-decreasing timestamp order per thread (enforced by validate()).
  void add(const Event& event);

  /// Appends a whole per-thread stream (used by trace readers and the
  /// runtime flush path). Stream must be sorted by timestamp.
  void add_thread_stream(ThreadId tid, std::vector<Event> events);

  /// Appends a chunk to a thread's stream without re-sorting; chunks must
  /// arrive in timestamp order (the streaming reader's contract). Used to
  /// ingest large traces chunk by chunk without an intermediate copy.
  void append_thread_events(ThreadId tid, std::span<const Event> events);

  /// Pre-sizes a thread's stream (streaming ingestion knows the count up
  /// front from the file header, so the vector grows exactly once).
  void reserve_thread_events(ThreadId tid, std::size_t count);

  std::size_t thread_count() const noexcept { return threads_.size(); }
  std::span<const Event> thread_events(ThreadId tid) const;

  /// Total number of events across all threads.
  std::size_t event_count() const noexcept;

  /// Earliest / latest timestamp in the trace; 0 if empty.
  std::uint64_t start_ts() const noexcept;
  std::uint64_t end_ts() const noexcept;

  /// Attaches a human-readable name to a synchronization object (mutex,
  /// barrier, condvar). Anonymous objects render as "mutex@<id>" etc.
  void set_object_name(ObjectId object, std::string name);
  const std::string* object_name(ObjectId object) const;

  /// Name lookup that falls back to `<prefix>@<id>`.
  std::string object_display_name(ObjectId object, std::string_view prefix) const;

  void set_thread_name(ThreadId tid, std::string name);
  std::string thread_display_name(ThreadId tid) const;

  /// Events the producing runtime had to drop at record time (buffer
  /// overrun, recording after teardown). Carried in the `.clat` v2 meta
  /// chunk so the analyzer can report incomplete coverage.
  void set_dropped_events(std::uint64_t count) noexcept { dropped_events_ = count; }
  std::uint64_t dropped_events() const noexcept { return dropped_events_; }

  /// Runtime warnings the producing process recorded in the `.clat`
  /// RuntimeWarnings chunk: stable cla::util::DiagCode value (CLA_W_*) ->
  /// count/value. The analyzer surfaces them in its trace-health section.
  void set_runtime_warning(std::uint32_t code, std::uint64_t value) {
    runtime_warnings_[code] = value;
  }
  const std::map<std::uint32_t, std::uint64_t>& runtime_warnings()
      const noexcept {
    return runtime_warnings_;
  }

  const std::map<ObjectId, std::string>& object_names() const noexcept {
    return object_names_;
  }
  const std::map<ThreadId, std::string>& thread_names() const noexcept {
    return thread_names_;
  }

  /// Acquisition call-stack table (`.clat` CallStacks chunk): stack id ->
  /// return-address chain, outermost frame last. Ids start at 1; id 0 (and
  /// kNoArg) mean "no stack recorded". MutexAcquire events carry the id of
  /// the acquiring callsite in their `arg` field when capture was enabled.
  void set_call_stack(std::uint64_t id, std::vector<std::uint64_t> pcs) {
    call_stacks_[id] = std::move(pcs);
  }
  const std::vector<std::uint64_t>* call_stack(std::uint64_t id) const {
    auto it = call_stacks_.find(id);
    return it == call_stacks_.end() ? nullptr : &it->second;
  }
  const std::map<std::uint64_t, std::vector<std::uint64_t>>& call_stacks()
      const noexcept {
    return call_stacks_;
  }

  /// Frame-symbol table (`.clat` FrameSymbols chunk): program counter ->
  /// "symbol+0xoff (module)" string resolved by the *recording* process
  /// (dladdr at clean shutdown). Carried in the trace because raw PCs are
  /// meaningless in any other process's address space.
  void set_frame_symbol(std::uint64_t pc, std::string name) {
    frame_symbols_[pc] = std::move(name);
  }
  const std::map<std::uint64_t, std::string>& frame_symbols() const noexcept {
    return frame_symbols_;
  }

  /// Checks the structural invariants above; throws
  /// cla::util::ValidationError summarising the violations. The underlying
  /// checker (validate_trace in cla/trace/validate.hpp) reports every
  /// violation as a structured diagnostic instead of stopping at the first.
  void validate() const;

  /// Renders a human-readable dump (debugging aid; O(events) big).
  std::string dump() const;

 private:
  std::vector<std::vector<Event>> threads_;
  std::map<ObjectId, std::string> object_names_;
  std::map<ThreadId, std::string> thread_names_;
  std::uint64_t dropped_events_ = 0;
  std::map<std::uint32_t, std::uint64_t> runtime_warnings_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> call_stacks_;
  std::map<std::uint64_t, std::string> frame_symbols_;
};

}  // namespace cla::trace
