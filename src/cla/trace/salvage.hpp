// Trace salvage: recover an analyzable trace from a torn `.clat` file.
//
// A recording that died mid-run (segfault, SIGKILL, disk full, torn
// final write) leaves a file the strict reader rejects. salvage_trace()
// instead keeps every chunk (v2) or complete record prefix (v1) that is
// still intact, drops the torn tail — resynchronising on the chunk magic
// past in-file corruption — and then repairs the recovered stream until
// Trace::validate() passes:
//
//   - per-thread timestamps are clamped monotone;
//   - a missing leading ThreadStart is synthesized at the first event;
//   - dangling critical sections (lock held, acquire pending, inside a
//     barrier at the point of death) are closed at the thread's
//     last-seen timestamp;
//   - a missing trailing ThreadExit is synthesized;
//   - threads whose every chunk was lost get a stub Start/Exit pair so
//     surviving cross-thread references stay resolvable.
//
// The SalvageReport says exactly how much was recovered, dropped and
// synthesized, so `cla-analyze --salvage` can tell a clean trace from a
// repaired one (its exit code distinguishes the two).
#pragma once

#include <iosfwd>
#include <string>

#include "cla/trace/trace.hpp"

namespace cla::trace {

struct SalvageReport {
  std::uint64_t events_recovered = 0;   ///< events surviving into the trace
  std::uint64_t bytes_dropped = 0;      ///< torn/corrupt bytes discarded
  std::uint64_t chunks_recovered = 0;   ///< intact v2 chunks (0 for v1)
  std::uint64_t chunks_dropped = 0;     ///< v2 chunks lost to CRC/tearing
  std::uint64_t synthesized_events = 0; ///< repair events added
  std::uint64_t events_discarded = 0;   ///< protocol-inconsistent events cut
  std::uint32_t threads_repaired = 0;   ///< threads needing any synthesis
  std::uint64_t runtime_dropped_events = 0;  ///< from the Meta chunk
  bool torn_tail = false;    ///< file ended mid-record/mid-chunk
  bool clean_close = false;  ///< writer's Meta chunk marked a clean exit

  /// True if anything at all had to be dropped or repaired — i.e. the
  /// salvaged trace is not byte-equivalent to a clean load.
  bool lossy() const noexcept {
    return bytes_dropped > 0 || chunks_dropped > 0 || synthesized_events > 0 ||
           events_discarded > 0 || torn_tail || !clean_close;
  }

  /// Human-readable summary (one line per non-zero fact).
  std::string to_string() const;
};

struct SalvageResult {
  Trace trace;
  SalvageReport report;
};

/// Recovers everything intact from `in` (v1 or v2). Throws
/// cla::util::Error only if the stream is not recognisably a `.clat`
/// file or holds no recoverable events at all; any partial content
/// yields a validate()-clean trace plus a report.
SalvageResult salvage_trace(std::istream& in);
SalvageResult salvage_trace_file(const std::string& path);

/// The repair half of salvage, exposed for reuse and tests: mutates
/// `trace` until validate() passes, accumulating what it did into
/// `report` (synthesized_events, threads_repaired). Thin wrapper over
/// repair_trace_semantics() in cla/trace/validate.hpp, which is also what
/// `cla-analyze --strictness=repair` runs.
void repair_trace(Trace& trace, SalvageReport& report);

}  // namespace cla::trace
