// Non-throwing semantic trace validation and the shared repair engine.
//
// validate_trace() replays every thread's event protocol and reports ALL
// violations as structured diagnostics (see cla/util/diagnostics.hpp)
// instead of throwing on the first: unpaired lock/unlock, re-acquire of a
// held non-recursive mutex, barrier re-entry, condition waits without a
// matching end, timestamp regressions, references to unregistered thread
// ids, and threads that never start or exit. Severity encodes the
// contract: `error` marks exactly the violations the historic
// Trace::validate() threw on, `warning` marks analyzable oddities it
// tolerated, so strict mode stays behaviour-compatible.
//
// repair_trace_semantics() is the deterministic fixer behind
// --strictness=repair/lenient and trace salvage (salvage.cpp delegates
// here): clamp timestamps monotone, synthesize missing ThreadStart /
// ThreadExit / unlock / barrier-leave / cond-end events, drop orphan
// events the protocol can no longer support, stub referenced-but-lost
// threads, and — under lenient — drop threads that are mostly garbage.
// Every repair is itself emitted as a diagnostic so reports can print a
// trace-health section. After repair, validate_trace() reports no errors.
#pragma once

#include <cstdint>

#include "cla/trace/trace.hpp"
#include "cla/trace/trace_view.hpp"
#include "cla/util/diagnostics.hpp"

namespace cla::trace {

/// Replays the whole trace and appends one diagnostic per violation to
/// `sink` (bounded by the sink's cap). Returns true iff no error- or
/// fatal-severity diagnostic was produced by this call. The TraceView
/// overload runs the identical checks read-only over a view (e.g. an
/// mmap-backed load), producing the same diagnostics.
bool validate_trace(const Trace& trace, util::DiagnosticSink& sink);
bool validate_trace(const TraceView& view, util::DiagnosticSink& sink);

/// What repair_trace_semantics() did to a trace.
struct RepairSummary {
  std::uint64_t synthesized_events = 0;  ///< repair events added
  std::uint64_t events_discarded = 0;    ///< orphan events dropped
  std::uint64_t timestamps_clamped = 0;  ///< non-monotone timestamps fixed
  std::uint32_t threads_repaired = 0;    ///< threads needing any change
  std::uint32_t threads_stubbed = 0;     ///< lost-but-referenced threads
  std::uint32_t threads_dropped = 0;     ///< lenient-mode thread drops

  bool changed() const noexcept {
    return synthesized_events > 0 || events_discarded > 0 ||
           timestamps_clamped > 0 || threads_repaired > 0 ||
           threads_stubbed > 0 || threads_dropped > 0;
  }
};

/// Deterministically rewrites `trace` until validate_trace() reports no
/// error-severity diagnostics. `mode` selects how aggressive the fixes
/// are: Repair keeps every thread (synthesizing and dropping events as
/// needed); Lenient additionally replaces threads whose stream is mostly
/// unsupportable with a stub Start/Exit pair. (Strict performs the same
/// repairs as Repair; callers enforce strictness *before* repairing.)
/// Each repair action is reported to `sink` (may be null).
RepairSummary repair_trace_semantics(Trace& trace, util::Strictness mode,
                                     util::DiagnosticSink* sink);

}  // namespace cla::trace
