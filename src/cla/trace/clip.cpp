#include "cla/trace/clip.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "cla/util/error.hpp"

namespace cla::trace {

namespace {

/// Per-(thread, mutex) protocol state while repairing one thread's stream.
enum class HoldState { Idle, Acquiring, Held };

}  // namespace

Trace clip_trace(const Trace& t, Window window) {
  CLA_CHECK(window.begin <= window.end, "clip window is inverted");
  Trace out;
  for (const auto& [object, name] : t.object_names()) {
    out.set_object_name(object, name);
  }
  for (const auto& [tid, name] : t.thread_names()) {
    out.set_thread_name(tid, name);
  }

  for (ThreadId tid = 0; tid < t.thread_count(); ++tid) {
    const auto events = t.thread_events(tid);
    if (events.empty()) continue;
    const std::uint64_t thread_begin = events.front().ts;
    const std::uint64_t thread_end = events.back().ts;
    // A thread entirely outside the window disappears from the clip.
    if (thread_end < window.begin || thread_begin > window.end) continue;

    const std::uint64_t clip_begin = std::max(thread_begin, window.begin);
    const std::uint64_t clip_end = std::min(thread_end, window.end);

    std::vector<Event> clipped;
    clipped.push_back(Event{clip_begin, kNoObject, kNoArg,
                            EventType::ThreadStart, 0, tid});

    // Locks held when the window opens need synthetic acquisition events;
    // find them by replaying the prefix.
    std::map<ObjectId, HoldState> state;
    for (const Event& e : events) {
      if (e.ts >= window.begin) break;
      switch (e.type) {
        case EventType::MutexAcquire:
          state[e.object] = HoldState::Acquiring;
          break;
        case EventType::MutexAcquired:
          state[e.object] = HoldState::Held;
          break;
        case EventType::MutexReleased:
          state[e.object] = HoldState::Idle;
          break;
        default:
          break;
      }
    }
    for (const auto& [object, hold] : state) {
      if (hold == HoldState::Held) {
        clipped.push_back(Event{clip_begin, object, kNoArg,
                                EventType::MutexAcquire, 0, tid});
        clipped.push_back(Event{clip_begin, object, 0,
                                EventType::MutexAcquired, 0, tid});
      }
      // An Acquire pending at the edge resumes below when its Acquired
      // event falls inside the window; re-issue the request at the edge.
      if (hold == HoldState::Acquiring) {
        clipped.push_back(Event{clip_begin, object, kNoArg,
                                EventType::MutexAcquire, 0, tid});
      }
    }

    // Body: copy in-window events, tracking state for right-edge repair.
    // Dangling halves (a BarrierArrive whose Leave is outside, a
    // CondWaitBegin whose End is outside) are dropped at the end.
    std::map<ObjectId, HoldState> live = state;
    std::vector<std::size_t> pending_barrier_arrive;  // indices in `clipped`
    std::vector<std::size_t> pending_cond_begin;
    for (const Event& e : events) {
      if (e.ts < window.begin || e.ts > window.end) continue;
      switch (e.type) {
        case EventType::ThreadStart:
        case EventType::ThreadExit:
          continue;  // re-synthesized at the clip edges
        case EventType::MutexAcquire:
          live[e.object] = HoldState::Acquiring;
          break;
        case EventType::MutexAcquired:
          // Repair: an Acquired whose Acquire fell before the window got
          // its synthetic request at the edge already (Acquiring state).
          live[e.object] = HoldState::Held;
          break;
        case EventType::MutexReleased:
          if (live.count(e.object) == 0 || live[e.object] != HoldState::Held) {
            // Release of a lock acquired before the window that we did
            // not see as held (e.g. acquired before any prefix event):
            // synthesize the acquisition at the window edge.
            clipped.push_back(Event{clip_begin, e.object, kNoArg,
                                    EventType::MutexAcquire, 0, tid});
            clipped.push_back(Event{clip_begin, e.object, 0,
                                    EventType::MutexAcquired, 0, tid});
          }
          live[e.object] = HoldState::Idle;
          break;
        case EventType::BarrierArrive:
          pending_barrier_arrive.push_back(clipped.size());
          break;
        case EventType::BarrierLeave:
          if (!pending_barrier_arrive.empty()) pending_barrier_arrive.pop_back();
          // A Leave with no in-window Arrive is dropped (half a wait says
          // nothing useful once its blocking part is outside the window).
          else continue;
          break;
        case EventType::CondWaitBegin:
          pending_cond_begin.push_back(clipped.size());
          break;
        case EventType::CondWaitEnd:
          if (!pending_cond_begin.empty()) pending_cond_begin.pop_back();
          else continue;
          break;
        default:
          break;
      }
      clipped.push_back(e);
    }

    // Right edge: drop dangling barrier arrivals / cond-wait begins
    // (mark-and-sweep from the back to keep indices valid).
    std::vector<std::size_t> to_drop = pending_barrier_arrive;
    to_drop.insert(to_drop.end(), pending_cond_begin.begin(),
                   pending_cond_begin.end());
    std::sort(to_drop.begin(), to_drop.end(), std::greater<>());
    for (const std::size_t index : to_drop) {
      clipped.erase(clipped.begin() + static_cast<std::ptrdiff_t>(index));
    }
    // Locks still held at the right edge get a synthetic release.
    for (const auto& [object, hold] : live) {
      if (hold == HoldState::Held) {
        clipped.push_back(Event{clip_end, object, kNoArg,
                                EventType::MutexReleased, 0, tid});
      }
    }
    clipped.push_back(
        Event{clip_end, kNoObject, kNoArg, EventType::ThreadExit, 0, tid});

    std::stable_sort(clipped.begin(), clipped.end(),
                     [](const Event& a, const Event& b) { return a.ts < b.ts; });
    out.add_thread_stream(tid, std::move(clipped));
  }
  return out;
}

std::optional<Window> find_phase(const Trace& t, std::size_t phase_index) {
  // Collect all markers across threads, in timestamp order.
  std::vector<std::pair<std::uint64_t, bool>> markers;  // (ts, is_begin)
  for (ThreadId tid = 0; tid < t.thread_count(); ++tid) {
    for (const Event& e : t.thread_events(tid)) {
      if (e.type == EventType::PhaseBegin) markers.emplace_back(e.ts, true);
      else if (e.type == EventType::PhaseEnd) markers.emplace_back(e.ts, false);
    }
  }
  std::sort(markers.begin(), markers.end());
  std::size_t seen = 0;
  std::optional<std::uint64_t> open;
  for (const auto& [ts, is_begin] : markers) {
    if (is_begin) {
      open = ts;
    } else if (open.has_value()) {
      if (seen == phase_index) return Window{*open, ts};
      ++seen;
      open.reset();
    }
  }
  return std::nullopt;
}

Trace clip_to_phase(const Trace& t, std::size_t phase_index) {
  const auto window = find_phase(t, phase_index);
  CLA_CHECK(window.has_value(),
            "trace has no recorded phase " + std::to_string(phase_index));
  return clip_trace(t, *window);
}

}  // namespace cla::trace
