#include "cla/trace/trace.hpp"

#include <algorithm>
#include <sstream>

#include "cla/util/error.hpp"

namespace cla::trace {

std::string_view to_string(EventType type) noexcept {
  switch (type) {
    case EventType::ThreadStart: return "ThreadStart";
    case EventType::ThreadExit: return "ThreadExit";
    case EventType::ThreadCreate: return "ThreadCreate";
    case EventType::JoinBegin: return "JoinBegin";
    case EventType::JoinEnd: return "JoinEnd";
    case EventType::MutexAcquire: return "MutexAcquire";
    case EventType::MutexAcquired: return "MutexAcquired";
    case EventType::MutexReleased: return "MutexReleased";
    case EventType::BarrierArrive: return "BarrierArrive";
    case EventType::BarrierLeave: return "BarrierLeave";
    case EventType::CondWaitBegin: return "CondWaitBegin";
    case EventType::CondWaitEnd: return "CondWaitEnd";
    case EventType::CondSignal: return "CondSignal";
    case EventType::CondBroadcast: return "CondBroadcast";
    case EventType::PhaseBegin: return "PhaseBegin";
    case EventType::PhaseEnd: return "PhaseEnd";
  }
  return "Unknown";
}

void Trace::add(const Event& event) {
  if (event.tid >= threads_.size()) threads_.resize(event.tid + 1);
  threads_[event.tid].push_back(event);
}

void Trace::add_thread_stream(ThreadId tid, std::vector<Event> events) {
  if (tid >= threads_.size()) threads_.resize(tid + 1);
  auto& stream = threads_[tid];
  if (stream.empty()) {
    stream = std::move(events);
  } else {
    stream.insert(stream.end(), events.begin(), events.end());
    std::stable_sort(stream.begin(), stream.end(),
                     [](const Event& a, const Event& b) { return a.ts < b.ts; });
  }
}

void Trace::append_thread_events(ThreadId tid, std::span<const Event> events) {
  if (tid >= threads_.size()) threads_.resize(tid + 1);
  auto& stream = threads_[tid];
  stream.insert(stream.end(), events.begin(), events.end());
}

void Trace::reserve_thread_events(ThreadId tid, std::size_t count) {
  if (tid >= threads_.size()) threads_.resize(tid + 1);
  threads_[tid].reserve(threads_[tid].size() + count);
}

std::span<const Event> Trace::thread_events(ThreadId tid) const {
  CLA_CHECK(tid < threads_.size(), "thread id out of range");
  return threads_[tid];
}

std::size_t Trace::event_count() const noexcept {
  std::size_t n = 0;
  for (const auto& stream : threads_) n += stream.size();
  return n;
}

std::uint64_t Trace::start_ts() const noexcept {
  std::uint64_t ts = ~0ull;
  for (const auto& stream : threads_)
    if (!stream.empty()) ts = std::min(ts, stream.front().ts);
  return ts == ~0ull ? 0 : ts;
}

std::uint64_t Trace::end_ts() const noexcept {
  std::uint64_t ts = 0;
  for (const auto& stream : threads_)
    if (!stream.empty()) ts = std::max(ts, stream.back().ts);
  return ts;
}

void Trace::set_object_name(ObjectId object, std::string name) {
  object_names_[object] = std::move(name);
}

const std::string* Trace::object_name(ObjectId object) const {
  auto it = object_names_.find(object);
  return it == object_names_.end() ? nullptr : &it->second;
}

std::string Trace::object_display_name(ObjectId object,
                                       std::string_view prefix) const {
  if (const auto* name = object_name(object)) return *name;
  return std::string(prefix) + "@" + std::to_string(object);
}

void Trace::set_thread_name(ThreadId tid, std::string name) {
  thread_names_[tid] = std::move(name);
}

std::string Trace::thread_display_name(ThreadId tid) const {
  auto it = thread_names_.find(tid);
  if (it != thread_names_.end()) return it->second;
  return "T" + std::to_string(tid);
}

namespace {

/// Per-(thread, mutex) protocol state for validation. Recursive mutexes
/// are allowed: depth counts nested Acquired/Released pairs.
struct MutexState {
  int depth = 0;
  bool acquiring = false;
};

}  // namespace

void Trace::validate() const {
  CLA_CHECK(!threads_.empty(), "trace has no threads");
  for (ThreadId tid = 0; tid < threads_.size(); ++tid) {
    const auto& stream = threads_[tid];
    const std::string tname = thread_display_name(tid);
    CLA_CHECK(!stream.empty(), "thread " + tname + " has no events");
    CLA_CHECK(stream.front().type == EventType::ThreadStart,
              "thread " + tname + " does not begin with ThreadStart");
    CLA_CHECK(stream.back().type == EventType::ThreadExit,
              "thread " + tname + " does not end with ThreadExit");

    std::map<ObjectId, MutexState> mutexes;
    std::map<ObjectId, bool> barrier_inside;  // true between Arrive and Leave
    std::uint64_t prev_ts = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const Event& e = stream[i];
      CLA_CHECK(e.tid == tid, "event tid mismatch in thread " + tname);
      CLA_CHECK(e.ts >= prev_ts,
                "timestamps of thread " + tname + " go backwards at event " +
                    std::to_string(i) + " (" + std::string(to_string(e.type)) + ")");
      prev_ts = e.ts;
      auto protocol_error = [&](const char* what) {
        ::cla::util::throw_error(
            __FILE__, __LINE__,
            "thread " + tname + ": " + what + " at event " + std::to_string(i) +
                " (" + std::string(to_string(e.type)) + " object " +
                std::to_string(e.object) + ")");
      };
      switch (e.type) {
        case EventType::ThreadStart:
          if (i != 0) protocol_error("ThreadStart not first");
          break;
        case EventType::ThreadExit:
          if (i + 1 != stream.size()) protocol_error("ThreadExit not last");
          break;
        case EventType::MutexAcquire: {
          auto& st = mutexes[e.object];
          if (st.acquiring)
            protocol_error("MutexAcquire while already acquiring");
          st.acquiring = true;
          break;
        }
        case EventType::MutexAcquired: {
          auto& st = mutexes[e.object];
          if (!st.acquiring)
            protocol_error("MutexAcquired without MutexAcquire");
          st.acquiring = false;
          ++st.depth;
          break;
        }
        case EventType::MutexReleased: {
          auto& st = mutexes[e.object];
          if (st.depth <= 0)
            protocol_error("MutexReleased without holding");
          --st.depth;
          break;
        }
        case EventType::BarrierArrive: {
          auto& inside = barrier_inside[e.object];
          if (inside) protocol_error("BarrierArrive while inside barrier");
          inside = true;
          break;
        }
        case EventType::BarrierLeave: {
          auto& inside = barrier_inside[e.object];
          if (!inside) protocol_error("BarrierLeave without BarrierArrive");
          inside = false;
          break;
        }
        default:
          break;
      }
    }
  }
}

std::string Trace::dump() const {
  std::ostringstream out;
  for (ThreadId tid = 0; tid < threads_.size(); ++tid) {
    out << "== " << thread_display_name(tid) << " ==\n";
    for (const Event& e : threads_[tid]) {
      out << "  " << e.ts << "  " << to_string(e.type);
      if (e.object != kNoObject) out << " obj=" << e.object;
      if (e.arg != kNoArg) out << " arg=" << e.arg;
      out << '\n';
    }
  }
  return out.str();
}

}  // namespace cla::trace
