#include "cla/trace/trace.hpp"

#include <algorithm>
#include <sstream>

#include "cla/trace/validate.hpp"
#include "cla/util/diagnostics.hpp"
#include "cla/util/error.hpp"

namespace cla::trace {

std::string_view to_string(EventType type) noexcept {
  switch (type) {
    case EventType::ThreadStart: return "ThreadStart";
    case EventType::ThreadExit: return "ThreadExit";
    case EventType::ThreadCreate: return "ThreadCreate";
    case EventType::JoinBegin: return "JoinBegin";
    case EventType::JoinEnd: return "JoinEnd";
    case EventType::MutexAcquire: return "MutexAcquire";
    case EventType::MutexAcquired: return "MutexAcquired";
    case EventType::MutexReleased: return "MutexReleased";
    case EventType::BarrierArrive: return "BarrierArrive";
    case EventType::BarrierLeave: return "BarrierLeave";
    case EventType::CondWaitBegin: return "CondWaitBegin";
    case EventType::CondWaitEnd: return "CondWaitEnd";
    case EventType::CondSignal: return "CondSignal";
    case EventType::CondBroadcast: return "CondBroadcast";
    case EventType::PhaseBegin: return "PhaseBegin";
    case EventType::PhaseEnd: return "PhaseEnd";
  }
  return "Unknown";
}

void Trace::add(const Event& event) {
  if (event.tid >= threads_.size()) threads_.resize(event.tid + 1);
  threads_[event.tid].push_back(event);
}

void Trace::add_thread_stream(ThreadId tid, std::vector<Event> events) {
  if (tid >= threads_.size()) threads_.resize(tid + 1);
  auto& stream = threads_[tid];
  if (stream.empty()) {
    stream = std::move(events);
  } else {
    stream.insert(stream.end(), events.begin(), events.end());
    std::stable_sort(stream.begin(), stream.end(),
                     [](const Event& a, const Event& b) { return a.ts < b.ts; });
  }
}

void Trace::append_thread_events(ThreadId tid, std::span<const Event> events) {
  if (tid >= threads_.size()) threads_.resize(tid + 1);
  auto& stream = threads_[tid];
  stream.insert(stream.end(), events.begin(), events.end());
}

void Trace::reserve_thread_events(ThreadId tid, std::size_t count) {
  if (tid >= threads_.size()) threads_.resize(tid + 1);
  threads_[tid].reserve(threads_[tid].size() + count);
}

std::span<const Event> Trace::thread_events(ThreadId tid) const {
  CLA_CHECK(tid < threads_.size(), "thread id out of range");
  return threads_[tid];
}

std::size_t Trace::event_count() const noexcept {
  std::size_t n = 0;
  for (const auto& stream : threads_) n += stream.size();
  return n;
}

std::uint64_t Trace::start_ts() const noexcept {
  std::uint64_t ts = ~0ull;
  for (const auto& stream : threads_)
    if (!stream.empty()) ts = std::min(ts, stream.front().ts);
  return ts == ~0ull ? 0 : ts;
}

std::uint64_t Trace::end_ts() const noexcept {
  std::uint64_t ts = 0;
  for (const auto& stream : threads_)
    if (!stream.empty()) ts = std::max(ts, stream.back().ts);
  return ts;
}

void Trace::set_object_name(ObjectId object, std::string name) {
  object_names_[object] = std::move(name);
}

const std::string* Trace::object_name(ObjectId object) const {
  auto it = object_names_.find(object);
  return it == object_names_.end() ? nullptr : &it->second;
}

std::string Trace::object_display_name(ObjectId object,
                                       std::string_view prefix) const {
  if (const auto* name = object_name(object)) return *name;
  return std::string(prefix) + "@" + std::to_string(object);
}

void Trace::set_thread_name(ThreadId tid, std::string name) {
  thread_names_[tid] = std::move(name);
}

std::string Trace::thread_display_name(ThreadId tid) const {
  auto it = thread_names_.find(tid);
  if (it != thread_names_.end()) return it->second;
  return "T" + std::to_string(tid);
}

void Trace::validate() const {
  util::DiagnosticSink sink;
  if (validate_trace(*this, sink)) return;
  std::string message = "trace failed validation: " +
                        std::to_string(sink.error_count()) +
                        " error-severity diagnostic(s)";
  if (const auto* first = sink.first_at_least(util::Severity::Error)) {
    message += "; first: " + first->to_string();
  }
  throw util::ValidationError(message);
}

std::string Trace::dump() const {
  std::ostringstream out;
  for (ThreadId tid = 0; tid < threads_.size(); ++tid) {
    out << "== " << thread_display_name(tid) << " ==\n";
    for (const Event& e : threads_[tid]) {
      out << "  " << e.ts << "  " << to_string(e.type);
      if (e.object != kNoObject) out << " obj=" << e.object;
      if (e.arg != kNoArg) out << " arg=" << e.arg;
      out << '\n';
    }
  }
  return out.str();
}

}  // namespace cla::trace
