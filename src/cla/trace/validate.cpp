#include "cla/trace/validate.hpp"

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cla::trace {

namespace {

using util::DiagCode;
using util::Diagnostic;
using util::DiagnosticSink;
using util::Severity;
using util::Strictness;

/// Ids beyond this are treated as corruption, not real thread references
/// (matches the salvage reader's plausibility caps).
constexpr std::uint64_t kMaxPlausibleTid = 1u << 20;

/// Per-(thread, mutex) protocol state. Recursive mutexes are allowed:
/// depth counts nested Acquired/Released pairs.
struct MutexState {
  int depth = 0;
  bool acquiring = false;
};

/// True for the event types whose `object` field names another thread.
bool references_thread(EventType type) noexcept {
  return type == EventType::ThreadCreate || type == EventType::JoinBegin ||
         type == EventType::JoinEnd;
}

std::string event_context(const Event& e) {
  std::string out(to_string(e.type));
  if (e.object != kNoObject) {
    out += " object ";
    out += std::to_string(e.object);
  }
  return out;
}

/// The replay core, storage-generic: `TraceLike` is Trace (span streams)
/// or TraceView (strided column streams) — same checks, same diagnostics.
template <typename TraceLike>
bool validate_trace_impl(const TraceLike& trace, DiagnosticSink& sink) {
  const std::uint64_t errors_before = sink.error_count();
  if (trace.thread_count() == 0 || trace.event_count() == 0) {
    sink.report(Severity::Fatal, DiagCode::CLA_E_NO_THREADS, Diagnostic::kNoTid,
                Diagnostic::kNoEvent, "trace has no threads or no events");
    return false;
  }

  const std::size_t thread_count = trace.thread_count();
  for (ThreadId tid = 0; tid < thread_count; ++tid) {
    const auto stream = trace.thread_events(tid);
    auto report = [&](Severity severity, DiagCode code, std::uint64_t event,
                      std::string message) {
      sink.report(severity, code, tid, event, std::move(message));
    };
    if (stream.empty()) {
      report(Severity::Error, DiagCode::CLA_E_EMPTY_THREAD, Diagnostic::kNoEvent,
             "thread has no events");
      continue;
    }
    if (stream.front().type != EventType::ThreadStart) {
      report(Severity::Error, DiagCode::CLA_E_NO_THREAD_START, 0,
             "first event is " + std::string(to_string(stream.front().type)) +
                 ", not ThreadStart");
    }
    if (stream.back().type != EventType::ThreadExit) {
      report(Severity::Error, DiagCode::CLA_E_DANGLING_THREAD, stream.size() - 1,
             "last event is " + std::string(to_string(stream.back().type)) +
                 ", not ThreadExit");
    }

    std::map<ObjectId, MutexState> mutexes;
    std::map<ObjectId, bool> barrier_inside;  // true between Arrive and Leave
    std::optional<ObjectId> open_wait;        // condvar of an open CondWaitBegin
    std::uint64_t max_ts = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const Event& e = stream[i];
      if (e.tid != tid) {
        report(Severity::Error, DiagCode::CLA_E_TID_MISMATCH, i,
               "event carries tid " + std::to_string(e.tid) +
                   " inside thread " + std::to_string(tid) + "'s stream");
      }
      if (e.ts < max_ts) {
        report(Severity::Error, DiagCode::CLA_E_TS_REGRESSION, i,
               "timestamp " + std::to_string(e.ts) + " goes backwards (" +
                   event_context(e) + ")");
      } else {
        max_ts = e.ts;
      }
      if (references_thread(e.type) && e.object >= thread_count) {
        report(Severity::Warning, DiagCode::CLA_W_UNKNOWN_THREAD_REF, i,
               event_context(e) + " references no known thread");
      }
      // State transitions mirror the repair engine's keep/drop replay: a
      // violating event leaves the state unchanged (as if dropped), so one
      // stray event yields one diagnostic instead of a cascade — and a
      // repaired trace replays cleanly.
      switch (e.type) {
        case EventType::ThreadStart:
          if (i != 0) {
            report(Severity::Error, DiagCode::CLA_E_STRAY_THREAD_START, i,
                   "ThreadStart not at the head of the stream");
          }
          break;
        case EventType::ThreadExit:
          if (i + 1 != stream.size()) {
            report(Severity::Error, DiagCode::CLA_E_STRAY_THREAD_EXIT, i,
                   "ThreadExit before the end of the stream");
          }
          break;
        case EventType::MutexAcquire: {
          auto& st = mutexes[e.object];
          if (st.acquiring) {
            report(Severity::Error, DiagCode::CLA_E_DOUBLE_ACQUIRE, i,
                   "MutexAcquire while already acquiring mutex " +
                       std::to_string(e.object));
          } else {
            st.acquiring = true;
          }
          break;
        }
        case EventType::MutexAcquired: {
          auto& st = mutexes[e.object];
          if (!st.acquiring) {
            report(Severity::Error, DiagCode::CLA_E_UNPAIRED_ACQUIRED, i,
                   "MutexAcquired without MutexAcquire on mutex " +
                       std::to_string(e.object));
          } else {
            st.acquiring = false;
            ++st.depth;
          }
          break;
        }
        case EventType::MutexReleased: {
          auto& st = mutexes[e.object];
          if (st.depth <= 0) {
            report(Severity::Error, DiagCode::CLA_E_UNPAIRED_UNLOCK, i,
                   "MutexReleased without holding mutex " +
                       std::to_string(e.object));
          } else {
            --st.depth;
          }
          break;
        }
        case EventType::BarrierArrive: {
          auto& inside = barrier_inside[e.object];
          if (inside) {
            report(Severity::Error, DiagCode::CLA_E_BARRIER_REENTER, i,
                   "BarrierArrive while inside barrier " +
                       std::to_string(e.object));
          } else {
            inside = true;
          }
          break;
        }
        case EventType::BarrierLeave: {
          auto& inside = barrier_inside[e.object];
          if (!inside) {
            report(Severity::Error, DiagCode::CLA_E_UNPAIRED_BARRIER_LEAVE, i,
                   "BarrierLeave without BarrierArrive on barrier " +
                       std::to_string(e.object));
          } else {
            inside = false;
          }
          break;
        }
        case EventType::CondWaitBegin:
          if (open_wait.has_value()) {
            report(Severity::Warning, DiagCode::CLA_W_NESTED_COND_WAIT, i,
                   "CondWaitBegin while a wait on condvar " +
                       std::to_string(*open_wait) + " is still open");
          } else {
            open_wait = e.object;
          }
          break;
        case EventType::CondWaitEnd:
          if (!open_wait.has_value()) {
            report(Severity::Warning, DiagCode::CLA_W_UNPAIRED_WAIT_END, i,
                   "CondWaitEnd without a matching CondWaitBegin on condvar " +
                       std::to_string(e.object));
          } else {
            open_wait.reset();
          }
          break;
        default:
          break;
      }
    }

    // Dangling protocol state at the end of the thread. The historic
    // validator tolerated these (it only checked transitions), so they are
    // warnings: strict mode stays compatible, repair mode closes them.
    const std::uint64_t end_idx = stream.size() - 1;
    for (const auto& [object, st] : mutexes) {
      if (st.acquiring) {
        report(Severity::Warning, DiagCode::CLA_W_ACQUIRE_PENDING_AT_EXIT,
               end_idx,
               "thread ended while still acquiring mutex " +
                   std::to_string(object));
      }
      if (st.depth > 0) {
        report(Severity::Warning, DiagCode::CLA_W_LOCK_HELD_AT_EXIT, end_idx,
               "thread ended still holding mutex " + std::to_string(object));
      }
    }
    for (const auto& [object, inside] : barrier_inside) {
      if (inside) {
        report(Severity::Warning, DiagCode::CLA_W_OPEN_BARRIER_AT_EXIT, end_idx,
               "thread ended inside barrier " + std::to_string(object));
      }
    }
    if (open_wait.has_value()) {
      report(Severity::Warning, DiagCode::CLA_W_OPEN_WAIT_AT_EXIT, end_idx,
             "thread ended inside a wait on condvar " +
                 std::to_string(*open_wait));
    }
  }
  return sink.error_count() == errors_before;
}

}  // namespace

bool validate_trace(const Trace& trace, DiagnosticSink& sink) {
  return validate_trace_impl(trace, sink);
}

bool validate_trace(const TraceView& view, DiagnosticSink& sink) {
  return validate_trace_impl(view, sink);
}

RepairSummary repair_trace_semantics(Trace& trace, Strictness mode,
                                     DiagnosticSink* sink) {
  RepairSummary summary;
  auto note = [&](DiagCode code, Severity severity, ThreadId tid,
                  std::string message) {
    if (sink != nullptr) {
      sink->report(severity, code, tid, Diagnostic::kNoEvent,
                   std::move(message));
    }
  };

  // Threads referenced by surviving Create/Join events whose own streams
  // were lost entirely (e.g. every chunk torn away) get stubbed so the
  // references stay resolvable. Implausibly large ids are corruption, not
  // references, and are left to the resolver's bounds checks.
  std::size_t needed_threads = trace.thread_count();
  for (ThreadId tid = 0; tid < trace.thread_count(); ++tid) {
    for (const Event& e : trace.thread_events(tid)) {
      if (references_thread(e.type) && e.object < kMaxPlausibleTid &&
          e.object + 1 > needed_threads) {
        needed_threads = static_cast<std::size_t>(e.object) + 1;
      }
    }
  }
  if (needed_threads > trace.thread_count()) {
    trace.reserve_thread_events(static_cast<ThreadId>(needed_threads - 1), 0);
  }

  Trace repaired;
  for (ThreadId tid = 0; tid < trace.thread_count(); ++tid) {
    const auto span = trace.thread_events(tid);
    std::vector<Event> events(span.begin(), span.end());
    std::uint64_t synthesized = 0;
    std::uint64_t discarded = 0;
    std::uint64_t clamped = 0;
    bool touched = false;

    if (events.empty()) {
      // Every event of this thread was lost; keep the slot resolvable
      // (other threads' ThreadCreate/Join events may reference it).
      events.push_back(Event{0, kNoObject, kNoArg, EventType::ThreadStart, 0, tid});
      events.push_back(Event{0, kNoObject, kNoArg, EventType::ThreadExit, 0, tid});
      synthesized += 2;
      ++summary.threads_stubbed;
      note(DiagCode::CLA_R_STUBBED_THREAD, Severity::Info, tid,
           "thread stream lost; stubbed with a Start/Exit pair");
    }

    // Clamp per-thread timestamps monotone (raw clock regressions are
    // normally repaired by the clean-exit flush, which a crash skipped).
    for (std::size_t i = 1; i < events.size(); ++i) {
      if (events[i].ts < events[i - 1].ts) {
        events[i].ts = events[i - 1].ts;
        touched = true;
        ++clamped;
      }
    }

    if (events.front().type != EventType::ThreadStart) {
      events.insert(events.begin(), Event{events.front().ts, kNoObject, kNoArg,
                                          EventType::ThreadStart, 0, tid});
      ++synthesized;
    }

    // Replay the protocol, dropping events a partial recording can no
    // longer support and tracking what is left dangling at the end.
    std::map<ObjectId, MutexState> mutexes;
    std::map<ObjectId, std::uint64_t> inside_barrier;  // object -> episode arg
    std::optional<ObjectId> open_wait;
    std::vector<Event> kept;
    kept.reserve(events.size() + 4);
    std::uint64_t original_kept = 0;
    std::optional<Event> final_exit;
    for (std::size_t i = 0; i < events.size(); ++i) {
      Event e = events[i];
      e.tid = tid;  // a corrupt tid inside an intact chunk body is repaired
      bool keep = true;
      switch (e.type) {
        case EventType::ThreadStart:
          keep = i == 0;
          break;
        case EventType::ThreadExit:
          // Re-appended once, at the very end.
          keep = false;
          if (i + 1 == events.size()) final_exit = e;
          break;
        case EventType::MutexAcquire: {
          auto& st = mutexes[e.object];
          keep = !st.acquiring;
          if (keep) st.acquiring = true;
          break;
        }
        case EventType::MutexAcquired: {
          auto& st = mutexes[e.object];
          keep = st.acquiring;
          if (keep) {
            st.acquiring = false;
            ++st.depth;
          }
          break;
        }
        case EventType::MutexReleased: {
          auto& st = mutexes[e.object];
          keep = st.depth > 0;
          if (keep) --st.depth;
          break;
        }
        case EventType::BarrierArrive:
          keep = !inside_barrier.contains(e.object);
          if (keep) inside_barrier[e.object] = e.arg;
          break;
        case EventType::BarrierLeave:
          keep = inside_barrier.contains(e.object);
          if (keep) inside_barrier.erase(e.object);
          break;
        case EventType::CondWaitBegin:
          keep = !open_wait.has_value();
          if (keep) open_wait = e.object;
          break;
        case EventType::CondWaitEnd:
          keep = open_wait.has_value();
          if (keep) open_wait.reset();
          break;
        default:
          break;
      }
      if (keep) {
        kept.push_back(e);
        ++original_kept;
      } else if (e.type != EventType::ThreadExit) {
        ++discarded;
        touched = true;
      }
    }

    const std::uint64_t last_ts = kept.empty() ? 0 : kept.back().ts;

    // Close dangling protocol state at the last-seen timestamp: an open
    // condition wait ends, a pending acquire collapses to a zero-length
    // uncontended section, a held lock is released, an open barrier
    // episode is left.
    if (open_wait.has_value()) {
      kept.push_back(Event{last_ts, *open_wait, kNoArg, EventType::CondWaitEnd,
                           0, tid});
      ++synthesized;
    }
    for (auto& [object, st] : mutexes) {
      if (st.acquiring) {
        kept.push_back(Event{last_ts, object, 0, EventType::MutexAcquired, 0, tid});
        kept.push_back(Event{last_ts, object, kNoArg, EventType::MutexReleased, 0, tid});
        synthesized += 2;
      }
      for (; st.depth > 0; --st.depth) {
        kept.push_back(Event{last_ts, object, kNoArg, EventType::MutexReleased, 0, tid});
        ++synthesized;
      }
    }
    for (const auto& [object, episode] : inside_barrier) {
      kept.push_back(Event{last_ts, object, episode, EventType::BarrierLeave, 0, tid});
      ++synthesized;
    }
    if (final_exit.has_value() && final_exit->ts >= last_ts) {
      kept.push_back(*final_exit);
      ++original_kept;
    } else {
      kept.push_back(Event{last_ts, kNoObject, kNoArg, EventType::ThreadExit, 0, tid});
      if (!final_exit.has_value()) ++synthesized;
    }

    // Lenient mode: a thread that lost more events than it kept carries
    // almost no signal; keep the tid resolvable but drop its content so
    // the rest of the trace analyzes unpolluted.
    if (mode == Strictness::Lenient && discarded > original_kept) {
      const std::uint64_t t0 = kept.front().ts;
      discarded += original_kept;
      synthesized = 2;
      clamped = 0;
      kept.clear();
      kept.push_back(Event{t0, kNoObject, kNoArg, EventType::ThreadStart, 0, tid});
      kept.push_back(Event{t0, kNoObject, kNoArg, EventType::ThreadExit, 0, tid});
      touched = true;
      ++summary.threads_dropped;
      note(DiagCode::CLA_R_DROPPED_THREAD, Severity::Warning, tid,
           "thread dropped: " + std::to_string(discarded) +
               " of its events were unsupportable");
    }

    if (sink != nullptr) {
      if (clamped > 0) {
        note(DiagCode::CLA_R_CLAMPED_TIMESTAMPS, Severity::Info, tid,
             "clamped " + std::to_string(clamped) +
                 " non-monotone timestamps");
      }
      if (discarded > 0) {
        note(DiagCode::CLA_R_DROPPED_EVENTS, Severity::Info, tid,
             "dropped " + std::to_string(discarded) +
                 " protocol-inconsistent events");
      }
      if (synthesized > 0) {
        note(DiagCode::CLA_R_SYNTHESIZED_EVENTS, Severity::Info, tid,
             "synthesized " + std::to_string(synthesized) +
                 " events to close the thread's protocol state");
      }
    }

    if (synthesized > 0 || touched) ++summary.threads_repaired;
    summary.synthesized_events += synthesized;
    summary.events_discarded += discarded;
    summary.timestamps_clamped += clamped;
    repaired.add_thread_stream(tid, std::move(kept));
  }

  for (const auto& [object, name] : trace.object_names()) {
    repaired.set_object_name(object, name);
  }
  for (const auto& [tid, name] : trace.thread_names()) {
    repaired.set_thread_name(tid, name);
  }
  repaired.set_dropped_events(trace.dropped_events());
  for (const auto& [code, value] : trace.runtime_warnings()) {
    repaired.set_runtime_warning(code, value);
  }
  for (const auto& [id, pcs] : trace.call_stacks()) {
    repaired.set_call_stack(id, pcs);
  }
  for (const auto& [pc, name] : trace.frame_symbols()) {
    repaired.set_frame_symbol(pc, name);
  }
  trace = std::move(repaired);
  return summary;
}

}  // namespace cla::trace
