#include "cla/trace/trace_view.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CLA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define CLA_HAVE_MMAP 0
#endif

#include <cerrno>
#include <cstring>

#include "cla/trace/trace.hpp"
#include "cla/trace/trace_io.hpp"
#include "cla/util/crc32.hpp"
#include "cla/util/error.hpp"

namespace cla::trace {

bool mmap_supported() noexcept { return CLA_HAVE_MMAP != 0; }

// ---- TraceView -----------------------------------------------------------

TraceView::TraceView(const Trace& trace)
    : object_names_(&trace.object_names()),
      thread_names_(&trace.thread_names()),
      runtime_warnings_(&trace.runtime_warnings()),
      call_stacks_(&trace.call_stacks()),
      frame_symbols_(&trace.frame_symbols()),
      dropped_events_(trace.dropped_events()) {
  threads_.reserve(trace.thread_count());
  for (ThreadId tid = 0; tid < trace.thread_count(); ++tid) {
    const auto events = trace.thread_events(tid);
    threads_.emplace_back(events.data(), events.size(), tid);
  }
}

const EventsView& TraceView::thread_events(ThreadId tid) const {
  CLA_CHECK(tid < threads_.size(), "thread id out of range");
  return threads_[tid];
}

std::size_t TraceView::event_count() const noexcept {
  std::size_t n = 0;
  for (const auto& t : threads_) n += t.size();
  return n;
}

std::uint64_t TraceView::start_ts() const noexcept {
  std::uint64_t ts = ~0ull;
  for (const auto& t : threads_)
    if (!t.empty()) ts = std::min(ts, t.ts_at(0));
  return ts == ~0ull ? 0 : ts;
}

std::uint64_t TraceView::end_ts() const noexcept {
  std::uint64_t ts = 0;
  for (const auto& t : threads_)
    if (!t.empty()) ts = std::max(ts, t.ts_at(t.size() - 1));
  return ts;
}

std::string TraceView::object_display_name(ObjectId object,
                                           std::string_view prefix) const {
  auto it = object_names_->find(object);
  if (it != object_names_->end()) return it->second;
  return std::string(prefix) + "@" + std::to_string(object);
}

std::string TraceView::thread_display_name(ThreadId tid) const {
  auto it = thread_names_->find(tid);
  if (it != thread_names_->end()) return it->second;
  return "T" + std::to_string(tid);
}

Trace TraceView::materialize() const {
  Trace trace;
  std::vector<Event> buffer;
  for (ThreadId tid = 0; tid < threads_.size(); ++tid) {
    const EventsView& events = threads_[tid];
    trace.reserve_thread_events(tid, events.size());
    buffer.clear();
    buffer.reserve(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) buffer.push_back(events[i]);
    trace.append_thread_events(tid, buffer);
  }
  for (const auto& [object, name] : *object_names_) {
    trace.set_object_name(object, name);
  }
  for (const auto& [tid, name] : *thread_names_) {
    trace.set_thread_name(tid, name);
  }
  trace.set_dropped_events(dropped_events_);
  for (const auto& [code, value] : *runtime_warnings_) {
    trace.set_runtime_warning(code, value);
  }
  for (const auto& [id, pcs] : *call_stacks_) {
    trace.set_call_stack(id, pcs);
  }
  for (const auto& [pc, name] : *frame_symbols_) {
    trace.set_frame_symbol(pc, name);
  }
  return trace;
}

const std::map<ObjectId, std::string>&
TraceView::empty_object_names() noexcept {
  static const std::map<ObjectId, std::string> empty;
  return empty;
}

const std::map<ThreadId, std::string>&
TraceView::empty_thread_names() noexcept {
  static const std::map<ThreadId, std::string> empty;
  return empty;
}

const std::map<std::uint32_t, std::uint64_t>&
TraceView::empty_runtime_warnings() noexcept {
  static const std::map<std::uint32_t, std::uint64_t> empty;
  return empty;
}

const std::map<std::uint64_t, std::vector<std::uint64_t>>&
TraceView::empty_call_stacks() noexcept {
  static const std::map<std::uint64_t, std::vector<std::uint64_t>> empty;
  return empty;
}

const std::map<std::uint64_t, std::string>&
TraceView::empty_frame_symbols() noexcept {
  static const std::map<std::uint64_t, std::string> empty;
  return empty;
}

// ---- MappedTrace ---------------------------------------------------------

namespace {

/// Bounds-checked forward cursor over the mapping (throwing, strict —
/// this loader matches read_trace's behavior, not salvage's).
struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;

  std::size_t remaining() const noexcept { return size - pos; }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    CLA_CHECK(remaining() >= sizeof(T), "trace stream truncated");
    T value;
    std::memcpy(&value, data + pos, sizeof value);
    pos += sizeof value;
    return value;
  }

  std::string get_string() {
    const auto len = get<std::uint32_t>();
    CLA_CHECK(len <= (1u << 20), "trace name record suspiciously large");
    CLA_CHECK(remaining() >= len, "trace stream truncated in name record");
    std::string s(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return s;
  }
};

}  // namespace

/// One on-disk events chunk: raw AoS bytes (v2 / v1 block) or an
/// undecoded v3 payload. Ordered per thread as the chunks appear in the
/// file — the writer's flush order, which is the timestamp order.
struct MappedTrace::Segment {
  const unsigned char* payload = nullptr;  // events bytes (v2) / payload (v3)
  std::size_t bytes = 0;
  std::uint32_t count = 0;
  bool v3 = false;
};

MappedTrace::MappedTrace(const std::string& path) {
#if CLA_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw util::TraceIoError(
        "cannot open trace file: " + path + ": " + std::strerror(errno),
        errno);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw util::TraceIoError(
        "cannot stat trace file: " + path + ": " + std::strerror(err), err);
  }
  map_size_ = static_cast<std::size_t>(st.st_size);
  if (map_size_ > 0) {
    void* map = ::mmap(nullptr, map_size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      throw util::TraceIoError(
          "cannot mmap trace file: " + path + ": " + std::strerror(err), err);
    }
    map_ = static_cast<const unsigned char*>(map);
  }
  ::close(fd);

  try {
    CLA_CHECK(map_size_ >= 8 && std::memcmp(map_, kTraceMagic, 4) == 0,
              "not a CLA trace (bad magic)");
    std::memcpy(&version_, map_ + 4, 4);
    CLA_CHECK(is_supported_trace_version(version_),
              "unsupported trace version " + std::to_string(version_));
    if (version_ == kTraceVersionLegacy) {
      load_v1(map_, map_size_);
    } else {
      load_chunked(map_, map_size_);
    }
    view_.object_names_ = &object_names_;
    view_.thread_names_ = &thread_names_;
    view_.runtime_warnings_ = &runtime_warnings_;
    view_.call_stacks_ = &call_stacks_;
    view_.frame_symbols_ = &frame_symbols_;
  } catch (...) {
    if (map_ != nullptr) ::munmap(const_cast<unsigned char*>(map_), map_size_);
    throw;
  }
#else
  CLA_CHECK(false, "mmap trace loading is not supported on this platform: " +
                       path);
#endif
}

MappedTrace::~MappedTrace() {
#if CLA_HAVE_MMAP
  if (map_ != nullptr) ::munmap(const_cast<unsigned char*>(map_), map_size_);
#endif
}

void MappedTrace::load_v1(const unsigned char* p, std::size_t size) {
  Cursor in{p, size, 8};

  const auto thread_count = in.get<std::uint32_t>();
  CLA_CHECK(thread_count <= (1u << 20), "implausible thread count in trace");

  const auto object_names = in.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < object_names; ++i) {
    const auto object = in.get<ObjectId>();
    object_names_[object] = in.get_string();
  }
  const auto thread_names = in.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < thread_names; ++i) {
    const auto tid = in.get<ThreadId>();
    thread_names_[tid] = in.get_string();
  }

  std::vector<std::vector<Segment>> segments;
  for (std::uint32_t block = 0; block < thread_count; ++block) {
    const auto tid = in.get<ThreadId>();
    CLA_CHECK(tid <= (1u << 20), "implausible thread id in trace");
    const auto count = in.get<std::uint64_t>();
    const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(Event);
    CLA_CHECK(in.remaining() >= bytes, "trace stream truncated in event block");
    if (tid >= segments.size()) segments.resize(tid + 1);
    segments[tid].push_back(Segment{in.data + in.pos, bytes,
                                    static_cast<std::uint32_t>(count), false});
    in.pos += bytes;
  }
  build_views(segments);
}

void MappedTrace::load_chunked(const unsigned char* p, std::size_t size) {
  std::vector<std::vector<Segment>> segments;
  bool clean_close = false;
  std::size_t pos = 8;
  while (pos < size) {
    CLA_CHECK(size - pos >= 16 && std::memcmp(p + pos, kChunkMagic, 4) == 0,
              "corrupt trace: bad chunk magic");
    std::uint32_t kind, payload_bytes, crc;
    std::memcpy(&kind, p + pos + 4, 4);
    std::memcpy(&payload_bytes, p + pos + 8, 4);
    std::memcpy(&crc, p + pos + 12, 4);
    CLA_CHECK(payload_bytes <= kMaxChunkPayload,
              "corrupt trace: implausible chunk size");
    CLA_CHECK(size - pos - 16 >= payload_bytes,
              "trace stream truncated inside chunk");
    const unsigned char* payload = p + pos + 16;
    CLA_CHECK(util::crc32(payload, payload_bytes) == crc,
              "corrupt trace: chunk CRC mismatch");
    pos += 16 + payload_bytes;

    switch (static_cast<ChunkKind>(kind)) {
      case ChunkKind::ObjectNames: {
        Cursor body{payload, payload_bytes};
        const auto count = body.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto object = body.get<ObjectId>();
          object_names_[object] = body.get_string();
        }
        break;
      }
      case ChunkKind::ThreadNames: {
        Cursor body{payload, payload_bytes};
        const auto count = body.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto tid = body.get<ThreadId>();
          thread_names_[tid] = body.get_string();
        }
        break;
      }
      case ChunkKind::Events: {
        Cursor body{payload, payload_bytes};
        const auto tid = body.get<ThreadId>();
        const auto count = body.get<std::uint32_t>();
        CLA_CHECK(tid <= (1u << 20), "implausible thread id in trace");
        CLA_CHECK(body.remaining() == count * sizeof(Event),
                  "corrupt trace: events chunk size mismatch");
        if (tid >= segments.size()) segments.resize(tid + 1);
        segments[tid].push_back(
            Segment{payload + 8, count * sizeof(Event), count, false});
        break;
      }
      case ChunkKind::EventsV3: {
        ThreadId tid = 0;
        std::uint32_t count = 0;
        CLA_CHECK(peek_events_v3(payload, payload_bytes, tid, count),
                  "corrupt trace: bad v3 events chunk header");
        if (tid >= segments.size()) segments.resize(tid + 1);
        segments[tid].push_back(Segment{payload, payload_bytes, count, true});
        break;
      }
      case ChunkKind::Meta: {
        Cursor body{payload, payload_bytes};
        view_.dropped_events_ = body.get<std::uint64_t>();
        if ((body.get<std::uint32_t>() & kMetaFlagCleanClose) != 0) {
          clean_close = true;
        }
        break;
      }
      case ChunkKind::RuntimeWarnings: {
        Cursor body{payload, payload_bytes};
        const auto count = body.get<std::uint32_t>();
        CLA_CHECK(body.remaining() == count * 12ull,
                  "corrupt trace: runtime-warnings chunk size mismatch");
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto code = body.get<std::uint32_t>();
          const auto value = body.get<std::uint64_t>();
          if (code != 0) runtime_warnings_[code] = value;
        }
        break;
      }
      case ChunkKind::CallStacks: {
        Cursor body{payload, payload_bytes};
        const auto count = body.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto id = body.get<std::uint64_t>();
          const auto depth = body.get<std::uint32_t>();
          CLA_CHECK(depth <= kMaxCallStackDepth,
                    "corrupt trace: implausible call-stack depth");
          std::vector<std::uint64_t> pcs(depth);
          for (std::uint32_t f = 0; f < depth; ++f) {
            pcs[f] = body.get<std::uint64_t>();
          }
          call_stacks_[id] = std::move(pcs);
        }
        break;
      }
      case ChunkKind::FrameSymbols: {
        Cursor body{payload, payload_bytes};
        const auto count = body.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto pc = body.get<std::uint64_t>();
          frame_symbols_[pc] = body.get_string();
        }
        break;
      }
      default:
        break;  // unknown chunk kind from a newer minor writer: skip it
    }
  }
  CLA_CHECK(clean_close,
            "trace has no clean-close marker (crashed or truncated "
            "recording; use --salvage)");
  build_views(segments);
}

void MappedTrace::build_views(
    const std::vector<std::vector<Segment>>& segments) {
  const std::size_t nthreads = segments.size();
  soa_.resize(nthreads);
  compacted_.resize(nthreads);
  view_.threads_.reserve(nthreads);

  for (ThreadId tid = 0; tid < nthreads; ++tid) {
    const auto& segs = segments[tid];
    std::size_t total = 0;
    bool any_v3 = false;
    bool any_raw = false;
    for (const Segment& s : segs) {
      total += s.count;
      (s.v3 ? any_v3 : any_raw) = true;
    }

    if (total == 0) {
      view_.threads_.emplace_back(nullptr, 0, tid);
    } else if (!any_v3 && segs.size() == 1) {
      // The common v1/v2 shape: one contiguous run, viewed in place.
      view_.threads_.emplace_back(segs.front().payload, total, tid);
    } else if (any_v3 && !any_raw) {
      // Pure v3: decode each chunk once, straight into the final SoA
      // columns (chunk deltas are self-contained, so chunks decode
      // independently at any offset).
      SoaColumns& soa = soa_[tid];
      soa.ts.resize(total);
      soa.object.resize(total);
      soa.arg.resize(total);
      soa.type.resize(total);
      std::size_t off = 0;
      for (const Segment& s : segs) {
        CLA_CHECK(decode_events_v3(s.payload, s.bytes, soa.ts.data() + off,
                                   soa.object.data() + off,
                                   soa.arg.data() + off, soa.type.data() + off),
                  "corrupt trace: bad v3 events chunk encoding");
        off += s.count;
      }
      view_.threads_.emplace_back(soa.ts.data(), soa.object.data(),
                                  soa.arg.data(), soa.type.data(), total, tid);
    } else {
      // Several raw runs, or raw chunks mixed into a v3 file (crash-spill
      // fallback): compact into one owned AoS buffer, in file order.
      std::vector<Event>& events = compacted_[tid];
      events.resize(total);
      std::size_t off = 0;
      for (const Segment& s : segs) {
        if (s.v3) {
          CLA_CHECK(decode_events_v3(s.payload, s.bytes, events.data() + off),
                    "corrupt trace: bad v3 events chunk encoding");
        } else {
          std::memcpy(events.data() + off, s.payload, s.bytes);
          for (std::size_t i = 0; i < s.count; ++i) {
            events[off + i].tid = tid;
          }
        }
        off += s.count;
      }
      view_.threads_.emplace_back(events.data(), total, tid);
    }
  }
}

}  // namespace cla::trace
