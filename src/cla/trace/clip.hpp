// Trace clipping: restrict a trace to a time window or to a recorded
// phase, with synchronization-protocol repair at the boundaries.
//
// The paper profiles "the parallel phase of Radiosity" rather than whole
// executions. CLA supports this by letting applications drop
// PhaseBegin/PhaseEnd markers (cla::trace::EventType::PhaseBegin/End) and
// by clipping traces to a window before analysis:
//   - events outside [begin, end] are dropped;
//   - each surviving thread gets a ThreadStart/ThreadExit at the window
//     edges (so the clipped trace still validates);
//   - mutex/barrier/cond protocols cut by the window are repaired:
//     a critical section held across the left edge gets a synthetic
//     uncontended Acquire/Acquired at the edge, one held across the
//     right edge gets a synthetic Released, and dangling barrier/cond
//     halves are dropped.
#pragma once

#include <cstdint>
#include <optional>

#include "cla/trace/trace.hpp"

namespace cla::trace {

/// A [begin, end] window in trace timestamps.
struct Window {
  std::uint64_t begin = 0;
  std::uint64_t end = ~static_cast<std::uint64_t>(0);
};

/// Returns the trace restricted to `window`, protocol-repaired. Threads
/// with no activity inside the window are dropped from the result only
/// if they never overlap it; otherwise they appear with synthetic
/// start/exit events. Object and thread names are preserved.
Trace clip_trace(const Trace& trace, Window window);

/// Finds the k-th phase recorded with PhaseBegin/PhaseEnd markers
/// (matched in timestamp order across all threads). Returns std::nullopt
/// if there is no such phase.
std::optional<Window> find_phase(const Trace& trace, std::size_t phase_index);

/// Convenience: clip to the k-th recorded phase. Throws cla::util::Error
/// if the phase does not exist.
Trace clip_to_phase(const Trace& trace, std::size_t phase_index);

}  // namespace cla::trace
