// LEB128-style varint and zigzag primitives for the `.clat` v3 event
// encoding.
//
// v3 stores per-thread event streams as delta-encoded, varint-compressed
// field groups (see trace_io.hpp). Encoders append to a std::string;
// decoders are strictly bounds-checked cursors that report truncation and
// overlong input by returning false instead of reading out of range, so
// the same routines back both the strict reader (which turns a failure
// into a corruption error) and salvage (which drops the chunk).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cla::trace {

/// Maps signed deltas onto small unsigned values (0, -1, 1, -2, ...).
constexpr std::uint64_t zigzag_encode(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

/// Longest possible encoding of a u64 (10 * 7 bits >= 64 bits).
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Appends `value` to `out` as a base-128 varint (7 bits per byte, high
/// bit = continuation).
inline void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

/// Bounds-checked varint cursor over `[data, data + size)`.
struct VarintReader {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  std::size_t remaining() const noexcept { return size - pos; }

  /// Reads one varint into `out`; false on truncation or an encoding
  /// longer than 10 bytes (corrupt input, not a valid u64).
  bool get(std::uint64_t& out) noexcept {
    std::uint64_t value = 0;
    unsigned shift = 0;
    for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
      if (pos >= size) return false;
      const unsigned char byte = data[pos++];
      // The 10th byte may only contribute the final bit of a u64.
      if (i == kMaxVarintBytes - 1 && (byte & 0xfe) != 0) return false;
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        out = value;
        return true;
      }
      shift += 7;
    }
    return false;  // 10 continuation bytes: overlong
  }
};

}  // namespace cla::trace
