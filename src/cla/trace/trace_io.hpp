// Versioned binary trace file format (".clat").
//
// Layout (little-endian):
//   magic "CLAT" | u32 version | u32 thread_count
//   u32 object_name_count | { u64 object_id, u32 len, bytes }...
//   u32 thread_name_count | { u32 tid, u32 len, bytes }...
//   per thread: u32 tid | u64 event_count | event_count * 32-byte Event
//
// The format is what the instrumentation runtime flushes at process exit
// and what `cla-analyze` consumes (paper Fig. 3's trace file).
#pragma once

#include <iosfwd>
#include <string>

#include "cla/trace/trace.hpp"

namespace cla::trace {

inline constexpr char kTraceMagic[4] = {'C', 'L', 'A', 'T'};
inline constexpr std::uint32_t kTraceVersion = 1;

/// Writes `trace` to a stream / file. Throws cla::util::Error on IO failure.
void write_trace(const Trace& trace, std::ostream& out);
void write_trace_file(const Trace& trace, const std::string& path);

/// Reads a trace back. Throws cla::util::Error on malformed input
/// (bad magic, truncated stream, unsupported version).
Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

}  // namespace cla::trace
