// Versioned binary trace file format (".clat").
//
// v1 layout (little-endian), still fully readable:
//   magic "CLAT" | u32 version=1 | u32 thread_count
//   u32 object_name_count | { u64 object_id, u32 len, bytes }...
//   u32 thread_name_count | { u32 tid, u32 len, bytes }...
//   per thread: u32 tid | u64 event_count | event_count * 32-byte Event
//
// v2 layout (the current write format) is crash-resilient: after the
// 8-byte preamble (magic + u32 version=2) the file is a pure append-only
// sequence of individually checksummed chunks:
//
//   chunk: "CLCH" | u32 kind | u32 payload_bytes | u32 crc32(payload) | payload
//
//   kind 1 ObjectNames: u32 count | { u64 object_id, u32 len, bytes }...
//   kind 2 ThreadNames: u32 count | { u32 tid, u32 len, bytes }...
//   kind 3 Events:      u32 tid | u32 count | count * 32-byte Event
//   kind 4 Meta:        u64 dropped_events | u32 flags (bit0 = clean close)
//   kind 6 RuntimeWarnings: u32 count | count * { u32 code, u64 value }
//          (code 0 = empty slot; codes are cla::util::DiagCode values,
//          e.g. CLA_W_IO_DROPPED_EVENTS)
//   kind 7 CallStacks:   u32 count | count * { u64 stack_id, u32 depth,
//          depth * u64 pc } — dedup'd acquisition call-stack table.
//          Stack ids start at 1 (0 = "no stack"); MutexAcquire events
//          reference them through their otherwise-unused `arg` field.
//          Frames are ordered innermost (the lock call's caller) first.
//   kind 8 FrameSymbols: u32 count | count * { u64 pc, u32 len, bytes } —
//          program counter -> symbol string, resolved by the recording
//          process (dladdr at clean close; raw PCs are meaningless in any
//          other address space). Both kinds apply last-write-wins and are
//          skipped by pre-callsite readers, so traces without them load
//          byte-identically to v2/v3 files written before kind 7/8 existed.
//
// Chunks carry no global counts or offsets, so a writer can append them
// incrementally as per-thread buffers fill and a reader can recover every
// intact prefix of a torn file (see salvage.hpp). A clean writer close
// records a Meta chunk with the clean flag set; its absence marks a
// crashed or truncated recording. Duplicate name entries resolve
// last-write-wins (Meta and RuntimeWarnings likewise: the last chunk
// read wins); a thread's Events chunks must appear in timestamp order
// relative to each other (the per-thread buffers flush in order).
//
// ChunkedTraceWriter reserves a RuntimeWarnings chunk and a Meta chunk
// directly after the preamble at construction time and REWRITES THEM IN
// PLACE (pwrite) on close or crash spill. In-place rewrites of already
// allocated file bytes need no new disk blocks, so the drop counter and
// the warning trailer survive even a persistently full disk that made
// every appending write fail. Readers accept Meta/RuntimeWarnings chunks
// anywhere in the file (the ostream conversion path still appends them at
// the end).
//
// v3 keeps the v2 preamble/chunk/CRC framing exactly and adds one chunk
// kind, EventsV3 (5), holding the same per-thread event runs in a compact
// delta/varint encoding (~4-8 bytes per event instead of 32):
//
//   kind 5 EventsV3: u32 tid | u32 count | four field groups, columnar:
//     count * varint(zigzag(ts[i]     - ts[i-1]))      (ts[-1] = 0)
//     count * varint(zigzag(object[i] - object[i-1]))  (object[-1] = 0)
//     count * varint(arg[i] + 1)                       (kNoArg wraps to 0)
//     count * varint(type[i])
//
// Deltas restart in every chunk, so each chunk stays self-contained and
// salvage/resync semantics are identical to v2. A v3 file may also carry
// raw kind-3 Events chunks (the async-signal-safe crash spill falls back
// to them); readers dispatch on the chunk kind, never the file version.
//
// The format is what the instrumentation runtime flushes (incrementally
// in v2/v3) and what `cla-analyze` consumes (paper Fig. 3's trace file).
// `TraceStreamReader` below is the copying istream reader; the zero-copy
// mmap path lives in trace_view.hpp and shares the chunk/varint codecs.
#pragma once

#include <atomic>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cla/trace/trace.hpp"

struct iovec;  // <sys/uio.h>; only trace_io.cpp needs the definition

namespace cla::trace {

inline constexpr char kTraceMagic[4] = {'C', 'L', 'A', 'T'};
inline constexpr std::uint32_t kTraceVersion = 2;
inline constexpr std::uint32_t kTraceVersionLegacy = 1;
inline constexpr std::uint32_t kTraceVersionV3 = 3;

inline constexpr char kChunkMagic[4] = {'C', 'L', 'C', 'H'};

/// Chunk kinds (see format comment above).
enum class ChunkKind : std::uint32_t {
  ObjectNames = 1,
  ThreadNames = 2,
  Events = 3,
  Meta = 4,
  EventsV3 = 5,
  RuntimeWarnings = 6,
  CallStacks = 7,
  FrameSymbols = 8,
};

/// Hard cap on frames per recorded call stack (the interposer clamps
/// CLA_STACK_DEPTH to this; readers treat larger depths as corruption).
inline constexpr std::uint32_t kMaxCallStackDepth = 8;

/// One entry of a RuntimeWarnings chunk: a stable cla::util::DiagCode
/// value (CLA_W_*) plus a count/value. Code 0 marks an empty slot.
struct RuntimeWarning {
  std::uint32_t code = 0;
  std::uint64_t value = 0;
};

/// Fixed slot count of the in-place RuntimeWarnings chunk the incremental
/// writer reserves after the preamble.
inline constexpr std::size_t kRuntimeWarningSlots = 8;

/// Meta-chunk flag: the writer closed the stream deliberately (clean
/// process exit). Salvage treats files without it as crashed recordings.
inline constexpr std::uint32_t kMetaFlagCleanClose = 1u << 0;

/// Hard upper bound on a single chunk's payload; a header whose size
/// field exceeds it is treated as corruption, not a gigantic allocation.
inline constexpr std::uint32_t kMaxChunkPayload = 1u << 26;  // 64 MiB

/// Returns true for versions this library can read and write.
constexpr bool is_supported_trace_version(std::uint32_t version) noexcept {
  return version == kTraceVersionLegacy || version == kTraceVersion ||
         version == kTraceVersionV3;
}

// ---- EventsV3 chunk codec ------------------------------------------------
//
// Shared by write_trace/ChunkedTraceWriter (encode) and by the strict
// stream reader, the mmap TraceView loader, and salvage (decode). The
// decoder is strictly bounds-checked and reports corruption by returning
// false, so salvage can drop a bad chunk where the strict reader throws.

/// Worst-case encoded payload size for `count` events (used to size
/// preallocated scratch so the writer never allocates on a hot path).
constexpr std::size_t events_v3_max_payload(std::size_t count) noexcept {
  return 8 + count * (10 + 10 + 10 + 3);  // ts + object + arg + type varints
}

/// Appends the EventsV3 chunk payload (u32 tid | u32 count | field
/// groups) for `events` to `payload`. Deltas start from 0, so the chunk
/// is self-contained. Appends nothing when count == 0.
void encode_events_v3(ThreadId tid, const Event* events, std::size_t count,
                      std::string& payload);

/// Reads the tid/count header of an EventsV3 payload. False when the
/// payload is too short to hold the header or `count` events (each event
/// occupies at least 4 payload bytes) or the tid/count are implausible.
bool peek_events_v3(const void* payload, std::size_t bytes, ThreadId& tid,
                    std::uint32_t& count);

/// Decodes the field groups of an EventsV3 payload into four column
/// arrays, each with capacity for the `count` peek_events_v3 reported.
/// False on truncation, overlong varints, out-of-range type values, or
/// trailing garbage; the output arrays are then unspecified.
bool decode_events_v3(const void* payload, std::size_t bytes, std::uint64_t* ts,
                      ObjectId* object, std::uint64_t* arg, std::uint16_t* type);

/// AoS convenience over the columnar decoder: fills `out[0..count)`
/// complete with tid and zeroed reserved field.
bool decode_events_v3(const void* payload, std::size_t bytes, Event* out);

/// Writes `trace` to a stream / file. Throws cla::util::Error on IO
/// failure. `version` selects the on-disk format (v2 chunked by default;
/// v3 for the compact varint encoding; v1 kept for compatibility tests
/// and old consumers).
void write_trace(const Trace& trace, std::ostream& out,
                 std::uint32_t version = kTraceVersion);
void write_trace_file(const Trace& trace, const std::string& path,
                      std::uint32_t version = kTraceVersion);

/// Incremental, crash-tolerant `.clat` v2/v3 writer over a raw POSIX fd.
///
/// Each append emits one self-contained checksummed chunk with a single
/// writev() call, so concurrent appends (the runtime's flusher thread vs.
/// a fatal-signal handler) interleave at chunk granularity only and a
/// chunk torn by process death is detected — and dropped — by CRC at
/// salvage time. write_events / write_meta / close allocate nothing and
/// only touch the fd, making them async-signal-safe; the name writers
/// build small heap buffers and must not be called from a handler.
///
/// In v3 mode write_events varint-encodes into a scratch buffer that is
/// preallocated at construction and guarded by a try-lock: if a fatal
/// signal lands while the flusher thread holds the scratch, the handler's
/// spill falls back to a raw v2 Events chunk instead of blocking —
/// mixed-kind files are legal, so nothing downstream notices.
///
/// Fault tolerance: every append goes through a retrying write loop —
/// EINTR restarts, short writes continue from where they stopped, and
/// transient errors (ENOSPC, EAGAIN, EDQUOT, EIO) get a bounded
/// exponential backoff. When the retry budget is exhausted the partially
/// written chunk is rolled back (ftruncate to the chunk start) so the
/// file stays structurally valid, and the writer enters a degraded
/// counted-drop mode: subsequent appends are single-shot (no backoff
/// stall on a full disk) until one succeeds again. The caller learns how
/// many events actually landed from write_events' return value and
/// accounts the rest as dropped. Hard errors (EBADF, ...) set failed_
/// permanently. Nothing here ever throws after a successful open: the
/// writer runs on teardown paths where throwing would kill the traced
/// application.
/// Ring retention (always-on mode): a non-zero `ring_bytes` caps the
/// file's on-disk size. When an append pushes the file past the cap the
/// writer compacts: it rewrites the preamble, the reserved in-place
/// chunks, every name chunk, and the *newest* event chunks (up to half
/// the cap) into a temp file, fsyncs, and rename()s it over the trace —
/// so any point-in-time snapshot of the path is either the old complete
/// file or the new complete file, never a mix, and both salvage cleanly.
/// Retired chunks' events are counted in ring_retired_events(); callers
/// fold them into the Meta dropped count so downstream analysis treats
/// retention exactly like any other counted loss. Compaction runs only on
/// the normal append path (never in teardown mode — fatal-signal handlers
/// must not allocate or rename) and swaps files with dup2(), so the fd
/// number concurrent teardown writers hold stays valid throughout.
class ChunkedTraceWriter {
 public:
  /// Opens (creates/truncates) `path` and writes the preamble for
  /// `version` (2 or 3). Throws cla::util::Error if the file cannot be
  /// opened or the version is not chunk-framed. A non-zero `ring_bytes`
  /// enables ring retention (clamped up to kMinRingBytes).
  explicit ChunkedTraceWriter(const std::string& path,
                              std::uint32_t version = kTraceVersion,
                              std::uint64_t ring_bytes = 0);
  ~ChunkedTraceWriter();

  /// Smallest accepted ring cap: room for the reserved region, the name
  /// chunks and at least a few event chunks, so compaction converges
  /// instead of thrashing.
  static constexpr std::uint64_t kMinRingBytes = 256 * 1024;

  ChunkedTraceWriter(const ChunkedTraceWriter&) = delete;
  ChunkedTraceWriter& operator=(const ChunkedTraceWriter&) = delete;

  /// False once any append failed (disk full, bad fd...).
  bool ok() const noexcept {
    return fd_ >= 0 && !failed_.load(std::memory_order_relaxed);
  }

  std::uint32_t version() const noexcept { return version_; }

  /// Appends Events (v2) or EventsV3 chunks for `tid` and returns how
  /// many of the `count` events were durably written (less than `count`
  /// only when the retry budget ran out — the caller counts the rest as
  /// dropped). Async-signal-safe (v3 falls back to a raw v2 chunk under
  /// scratch contention).
  std::size_t write_events(ThreadId tid, const Event* events,
                           std::size_t count);

  /// Appends a single-entry name chunk (names stream out as they are
  /// registered; readers apply duplicates last-write-wins).
  void write_object_name(ObjectId object, std::string_view name);
  void write_thread_name(ThreadId tid, std::string_view name);

  /// Appends a single-entry CallStacks chunk (stacks stream out as the
  /// recorder interns them; duplicates last-write-wins). `depth` is
  /// clamped to kMaxCallStackDepth. Not async-signal-safe.
  void write_call_stack(std::uint64_t stack_id, const std::uint64_t* pcs,
                        std::size_t depth);

  /// Appends a single-entry FrameSymbols chunk (pc -> symbol string).
  /// Written by the recorder's clean-close path after dladdr resolution.
  void write_frame_symbol(std::uint64_t pc, std::string_view name);

  /// Rewrites the reserved Meta chunk in place (dropped-event count +
  /// clean-close flag). Async-signal-safe; succeeds even on a full disk
  /// because the bytes are already allocated.
  void write_meta(std::uint64_t dropped_events, bool clean_close);

  /// Rewrites the reserved RuntimeWarnings chunk in place with up to
  /// kRuntimeWarningSlots entries. Async-signal-safe.
  void write_warnings(const RuntimeWarning* entries, std::size_t count);

  /// Switches to the teardown write policy: one retry, minimal backoff,
  /// and no append serialization / rollback (fatal-signal handlers must
  /// never spin on a lock an interrupted thread holds). Called by the
  /// crash-spill path before it writes.
  void set_teardown() noexcept {
    teardown_.store(true, std::memory_order_release);
  }

  /// Total write retries caused by EINTR or transient errors.
  std::uint64_t io_retries() const noexcept {
    return io_retries_.load(std::memory_order_relaxed);
  }
  /// Chunks abandoned after the retry budget ran out.
  std::uint64_t failed_chunks() const noexcept {
    return failed_chunks_.load(std::memory_order_relaxed);
  }
  /// True while the last append failed and drop mode is active.
  bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// Events retired by ring compaction (counted loss, like drops).
  std::uint64_t ring_retired_events() const noexcept {
    return ring_retired_events_.load(std::memory_order_relaxed);
  }
  /// Number of completed ring compactions (file rewrites).
  std::uint64_t ring_compactions() const noexcept {
    return ring_compactions_.load(std::memory_order_relaxed);
  }
  /// Compactions that no-op'd because the file held no retirable complete
  /// event chunk (degenerate trace: names + reserved region only, or one
  /// giant chunk). The ring bound is temporarily exceeded; callers surface
  /// the condition as CLA_W_RING_COMPACTION_NOOP instead of rewriting an
  /// event-free file.
  std::uint64_t ring_compaction_noops() const noexcept {
    return ring_compaction_noops_.load(std::memory_order_relaxed);
  }

  /// Flushes file-descriptor state and closes. Async-signal-safe.
  void close() noexcept;

 private:
  bool write_chunk(ChunkKind kind, const void* head, std::size_t head_len,
                   const void* body, std::size_t body_len,
                   std::size_t event_count = 0);
  bool write_events_raw(ThreadId tid, const Event* events, std::size_t count);
  bool robust_writev(::iovec* iov, int iovcnt, std::size_t total);
  bool robust_pwrite(const void* buf, std::size_t len, std::uint64_t offset);
  bool lock_appends() noexcept;
  void maybe_compact();  // caller holds the append lock

  int fd_ = -1;
  std::uint32_t version_ = kTraceVersion;
  std::string path_;

  // Ring-retention bookkeeping (all flusher-thread-only, mutated under
  // the append lock; teardown-mode writers never touch it).
  struct ChunkRecord {
    std::uint64_t offset = 0;   // chunk start in the current file
    std::uint32_t bytes = 0;    // header + payload
    ChunkKind kind = ChunkKind::Events;
    std::uint32_t events = 0;   // events lost if this chunk is retired
  };
  std::uint64_t ring_bytes_ = 0;  // 0 = unbounded (ring mode off)
  std::uint64_t append_bytes_ = 0;
  std::uint64_t compact_retry_at_ = 0;  // back off after a failed compaction
  std::vector<ChunkRecord> ring_chunks_;
  std::atomic<std::uint64_t> ring_retired_events_{0};
  std::atomic<std::uint64_t> ring_compactions_{0};
  std::atomic<std::uint64_t> ring_compaction_noops_{0};

  std::atomic<bool> failed_{false};
  std::atomic<bool> degraded_{false};
  std::atomic<bool> teardown_{false};
  std::atomic<std::uint64_t> io_retries_{0};
  std::atomic<std::uint64_t> failed_chunks_{0};
  // Serializes appending writers so the rollback of a failed chunk can
  // never truncate a concurrent writer's complete chunk. Bounded-spin
  // acquire: a signal handler that cannot get it drops the chunk instead
  // of deadlocking (teardown mode skips it entirely).
  std::atomic_flag append_busy_ = ATOMIC_FLAG_INIT;
  // v3 encode scratch: capacity reserved up front so appends inside the
  // reserved range never allocate (async-signal-safety), guarded by a
  // try-lock so a handler never blocks on the flusher.
  std::string v3_scratch_;
  std::atomic_flag v3_scratch_busy_ = ATOMIC_FLAG_INIT;
};

/// Streaming/chunked `.clat` reader (pipeline load stage), v1/v2/v3.
///
/// Parses the preamble eagerly, then hands out per-thread event runs in
/// bounded chunks so a consumer can ingest a large trace straight into
/// its final storage — no full intermediate event array is ever
/// materialised. For v2 a thread's events may arrive as several blocks
/// (one per on-disk chunk) and name tables may grow until the stream is
/// exhausted, so consumers should apply object_names()/thread_names()
/// after draining all blocks. Throws cla::util::Error on malformed input
/// (bad magic, unsupported version, implausible counts, truncation, CRC
/// mismatch) exactly like read_trace; use salvage_trace() to recover
/// what a torn file still holds.
///
/// Usage:
///   TraceStreamReader reader(in);
///   while (auto block = reader.next_thread()) {
///     Event buf[4096];
///     for (std::size_t n; (n = reader.read_events(buf, 4096)) > 0;)
///       consume(block->tid, {buf, n});
///   }
class TraceStreamReader {
 public:
  /// Reads and validates the preamble (and, for v1, the name tables).
  explicit TraceStreamReader(std::istream& in);

  std::uint32_t version() const noexcept { return version_; }

  /// v1: the header's thread count. v2: number of distinct threads seen
  /// so far (final only after the stream is drained).
  std::uint32_t thread_count() const noexcept { return thread_count_; }
  const std::map<ObjectId, std::string>& object_names() const noexcept {
    return object_names_;
  }
  const std::map<ThreadId, std::string>& thread_names() const noexcept {
    return thread_names_;
  }

  /// Dropped-event count from the v2 Meta chunk (0 until seen).
  std::uint64_t dropped_events() const noexcept { return dropped_events_; }

  /// Runtime warnings from RuntimeWarnings chunks (CLA_W_* DiagCode value
  /// -> count; empty slots skipped; last chunk read wins per code).
  const std::map<std::uint32_t, std::uint64_t>& runtime_warnings()
      const noexcept {
    return runtime_warnings_;
  }

  /// Call-stack table from CallStacks chunks (stack id -> pc chain) and
  /// frame symbols from FrameSymbols chunks (pc -> name). Like the name
  /// tables, they may grow until the stream is drained.
  const std::map<std::uint64_t, std::vector<std::uint64_t>>& call_stacks()
      const noexcept {
    return call_stacks_;
  }
  const std::map<std::uint64_t, std::string>& frame_symbols() const noexcept {
    return frame_symbols_;
  }

  /// True once a Meta chunk with the clean-close flag was read. The v2
  /// strict reader requires it at end-of-stream: every clean writer ends
  /// with one, so its absence means the recording crashed or the file was
  /// truncated at a chunk boundary — salvage territory.
  bool clean_close() const noexcept { return clean_close_; }

  struct ThreadBlock {
    ThreadId tid = 0;
    std::uint64_t event_count = 0;
  };

  /// Advances to the next event block (skipping any unread remainder of
  /// the current one); nullopt once the stream is exhausted. v2 blocks
  /// map 1:1 to on-disk Events chunks, so one tid can recur.
  std::optional<ThreadBlock> next_thread();

  /// Reads up to `max` events of the current block into `buf`; returns
  /// the number read, 0 when the block is exhausted.
  std::size_t read_events(Event* buf, std::size_t max);

 private:
  std::optional<ThreadBlock> next_thread_v1();
  std::optional<ThreadBlock> next_thread_v2();

  std::istream* in_;
  std::uint32_t version_ = kTraceVersionLegacy;
  std::uint32_t thread_count_ = 0;
  std::uint32_t threads_seen_ = 0;
  std::uint64_t remaining_in_block_ = 0;
  std::uint64_t dropped_events_ = 0;
  bool clean_close_ = false;
  std::map<std::uint32_t, std::uint64_t> runtime_warnings_;
  std::map<ObjectId, std::string> object_names_;
  std::map<ThreadId, std::string> thread_names_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> call_stacks_;
  std::map<std::uint64_t, std::string> frame_symbols_;
  std::map<ThreadId, bool> v2_tids_seen_;
  std::vector<Event> v2_chunk_;      // current v2/v3 Events chunk, decoded
  std::size_t v2_chunk_offset_ = 0;  // events already handed out
};

/// Rewrites a `.clat` file in `version` (1, 2 or 3), preserving events,
/// names and the dropped-event count. Backs `cla-analyze --convert`.
void convert_trace_file(const std::string& in_path,
                        const std::string& out_path, std::uint32_t version);

/// Parses a user-facing format name ("v1"/"1", "v2"/"2", "v3"/"3") into a
/// trace version; false on anything else.
bool parse_trace_format(std::string_view text, std::uint32_t& version);

/// Reads a trace back (one-shot convenience over TraceStreamReader).
/// Throws cla::util::Error on malformed input.
Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

}  // namespace cla::trace
