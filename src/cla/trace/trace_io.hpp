// Versioned binary trace file format (".clat").
//
// Layout (little-endian):
//   magic "CLAT" | u32 version | u32 thread_count
//   u32 object_name_count | { u64 object_id, u32 len, bytes }...
//   u32 thread_name_count | { u32 tid, u32 len, bytes }...
//   per thread: u32 tid | u64 event_count | event_count * 32-byte Event
//
// The format is what the instrumentation runtime flushes at process exit
// and what `cla-analyze` consumes (paper Fig. 3's trace file).
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "cla/trace/trace.hpp"

namespace cla::trace {

inline constexpr char kTraceMagic[4] = {'C', 'L', 'A', 'T'};
inline constexpr std::uint32_t kTraceVersion = 1;

/// Writes `trace` to a stream / file. Throws cla::util::Error on IO failure.
void write_trace(const Trace& trace, std::ostream& out);
void write_trace_file(const Trace& trace, const std::string& path);

/// Streaming/chunked `.clat` reader (pipeline load stage).
///
/// Parses the header eagerly, then hands out each thread block's events in
/// bounded chunks so a consumer can ingest a large trace straight into its
/// final storage — no full intermediate event array is ever materialised.
/// Throws cla::util::Error on malformed input (bad magic, unsupported
/// version, implausible counts, truncation) exactly like read_trace.
///
/// Usage:
///   TraceStreamReader reader(in);
///   while (auto block = reader.next_thread()) {
///     Event buf[4096];
///     for (std::size_t n; (n = reader.read_events(buf, 4096)) > 0;)
///       consume(block->tid, {buf, n});
///   }
class TraceStreamReader {
 public:
  /// Reads and validates the header (magic, version, name tables).
  explicit TraceStreamReader(std::istream& in);

  std::uint32_t thread_count() const noexcept { return thread_count_; }
  const std::map<ObjectId, std::string>& object_names() const noexcept {
    return object_names_;
  }
  const std::map<ThreadId, std::string>& thread_names() const noexcept {
    return thread_names_;
  }

  struct ThreadBlock {
    ThreadId tid = 0;
    std::uint64_t event_count = 0;
  };

  /// Advances to the next per-thread event block (skipping any unread
  /// remainder of the current one); nullopt once all blocks were visited.
  std::optional<ThreadBlock> next_thread();

  /// Reads up to `max` events of the current block into `buf`; returns the
  /// number read, 0 when the block is exhausted.
  std::size_t read_events(Event* buf, std::size_t max);

 private:
  std::istream* in_;
  std::uint32_t thread_count_ = 0;
  std::uint32_t threads_seen_ = 0;
  std::uint64_t remaining_in_block_ = 0;
  std::map<ObjectId, std::string> object_names_;
  std::map<ThreadId, std::string> thread_names_;
};

/// Reads a trace back (one-shot convenience over TraceStreamReader).
/// Throws cla::util::Error on malformed input.
Trace read_trace(std::istream& in);
Trace read_trace_file(const std::string& path);

}  // namespace cla::trace
