#include "cla/trace/salvage.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "cla/trace/trace_io.hpp"
#include "cla/trace/validate.hpp"
#include "cla/util/crc32.hpp"
#include "cla/util/error.hpp"

namespace cla::trace {

namespace {

/// Bounds-checked cursor over the fully buffered file. Salvage reads the
/// whole stream up front: recovery is a cold path, and resynchronising on
/// chunk magics needs random access.
struct BufReader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  std::size_t remaining() const { return size - pos; }

  template <typename T>
  bool try_get(T& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(&out, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool try_get_bytes(void* dst, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(dst, data + pos, n);
    pos += n;
    return true;
  }

  bool try_get_string(std::string& out) {
    std::uint32_t len = 0;
    if (!try_get(len) || len > (1u << 20) || remaining() < len) return false;
    out.assign(data + pos, len);
    pos += len;
    return true;
  }
};

// ---- v1 salvage ----------------------------------------------------------

void salvage_v1(BufReader& in, Trace& trace, SalvageReport& report) {
  auto torn = [&] {
    report.torn_tail = true;
    report.bytes_dropped += in.remaining();
    in.pos = in.size;
  };

  std::uint32_t thread_count = 0;
  if (!in.try_get(thread_count) || thread_count > (1u << 20)) return torn();

  std::uint32_t object_names = 0;
  if (!in.try_get(object_names)) return torn();
  for (std::uint32_t i = 0; i < object_names; ++i) {
    ObjectId object;
    std::string name;
    if (!in.try_get(object) || !in.try_get_string(name)) return torn();
    trace.set_object_name(object, std::move(name));
  }
  std::uint32_t thread_names = 0;
  if (!in.try_get(thread_names)) return torn();
  for (std::uint32_t i = 0; i < thread_names; ++i) {
    ThreadId tid;
    std::string name;
    if (!in.try_get(tid) || !in.try_get_string(name)) return torn();
    trace.set_thread_name(tid, std::move(name));
  }

  for (std::uint32_t block = 0; block < thread_count; ++block) {
    ThreadId tid;
    std::uint64_t declared = 0;
    if (!in.try_get(tid) || tid > (1u << 20) || !in.try_get(declared)) {
      return torn();
    }
    // Keep every whole event that is actually present; a block cut short
    // mid-event drops only the final partial record.
    const std::uint64_t available = in.remaining() / sizeof(Event);
    const std::uint64_t take = std::min(declared, available);
    std::vector<Event> events(static_cast<std::size_t>(take));
    in.try_get_bytes(events.data(), static_cast<std::size_t>(take) * sizeof(Event));
    report.events_recovered += take;
    trace.append_thread_events(tid, events);
    if (take < declared) return torn();
  }
  report.clean_close = true;  // a complete v1 file is a clean-exit flush
}

// ---- v2 salvage ----------------------------------------------------------

/// Index of the next chunk magic at or after `from`; npos if none.
std::size_t find_chunk_magic(const BufReader& in, std::size_t from) {
  if (from >= in.size) return std::string::npos;
  std::string_view hay(in.data, in.size);
  return hay.find(std::string_view(kChunkMagic, 4), from);
}

void salvage_v2(BufReader& in, Trace& trace, SalvageReport& report) {
  while (in.pos < in.size) {
    // Locate a plausible chunk header; resync past corruption.
    if (in.remaining() < 16 ||
        std::memcmp(in.data + in.pos, kChunkMagic, 4) != 0) {
      const std::size_t next = find_chunk_magic(in, in.pos + 1);
      ++report.chunks_dropped;
      if (next == std::string::npos) {
        report.torn_tail = true;
        report.bytes_dropped += in.remaining();
        return;
      }
      report.bytes_dropped += next - in.pos;
      in.pos = next;
      continue;
    }

    const std::size_t chunk_start = in.pos;
    std::uint32_t kind, payload_bytes, crc;
    in.pos += 4;  // magic
    in.try_get(kind);
    in.try_get(payload_bytes);
    in.try_get(crc);
    if (payload_bytes > kMaxChunkPayload) {
      // Corrupt size field: this "header" is garbage; resync after it.
      in.pos = chunk_start + 4;
      ++report.chunks_dropped;
      const std::size_t next = find_chunk_magic(in, in.pos);
      report.bytes_dropped += (next == std::string::npos ? in.size : next) - chunk_start;
      if (next == std::string::npos) {
        report.torn_tail = true;
        in.pos = in.size;
        return;
      }
      in.pos = next;
      continue;
    }
    if (in.remaining() < payload_bytes) {
      // Torn tail: the final chunk was cut mid-write.
      report.torn_tail = true;
      ++report.chunks_dropped;
      report.bytes_dropped += in.size - chunk_start;
      in.pos = in.size;
      return;
    }
    const char* payload = in.data + in.pos;
    if (util::crc32(payload, payload_bytes) != crc) {
      // Checksum failure: drop this chunk and resync just past its magic
      // (its size field is untrustworthy).
      ++report.chunks_dropped;
      const std::size_t next = find_chunk_magic(in, chunk_start + 4);
      report.bytes_dropped += (next == std::string::npos ? in.size : next) - chunk_start;
      if (next == std::string::npos) {
        report.torn_tail = true;
        in.pos = in.size;
        return;
      }
      in.pos = next;
      continue;
    }
    in.pos += payload_bytes;

    BufReader body{payload, payload_bytes};
    bool intact = true;
    switch (static_cast<ChunkKind>(kind)) {
      case ChunkKind::ObjectNames: {
        std::uint32_t count = 0;
        intact = body.try_get(count);
        for (std::uint32_t i = 0; intact && i < count; ++i) {
          ObjectId object;
          std::string name;
          intact = body.try_get(object) && body.try_get_string(name);
          if (intact) trace.set_object_name(object, std::move(name));
        }
        break;
      }
      case ChunkKind::ThreadNames: {
        std::uint32_t count = 0;
        intact = body.try_get(count);
        for (std::uint32_t i = 0; intact && i < count; ++i) {
          ThreadId tid;
          std::string name;
          intact = body.try_get(tid) && body.try_get_string(name);
          if (intact) trace.set_thread_name(tid, std::move(name));
        }
        break;
      }
      case ChunkKind::Events: {
        ThreadId tid = 0;
        std::uint32_t count = 0;
        intact = body.try_get(tid) && body.try_get(count) && tid <= (1u << 20) &&
                 body.remaining() == count * sizeof(Event);
        if (intact) {
          std::vector<Event> events(count);
          body.try_get_bytes(events.data(), count * sizeof(Event));
          trace.append_thread_events(tid, events);
          report.events_recovered += count;
        }
        break;
      }
      case ChunkKind::EventsV3: {
        ThreadId tid = 0;
        std::uint32_t count = 0;
        intact = peek_events_v3(payload, payload_bytes, tid, count);
        if (intact) {
          // The CRC already passed, so a decode failure means a writer
          // bug, not a torn file — but salvage stays fail-soft either way
          // and just drops the chunk.
          std::vector<Event> events(count);
          intact = decode_events_v3(payload, payload_bytes, events.data());
          if (intact) {
            trace.append_thread_events(tid, events);
            report.events_recovered += count;
          }
        }
        break;
      }
      case ChunkKind::Meta: {
        std::uint32_t flags = 0;
        intact = body.try_get(report.runtime_dropped_events) &&
                 body.try_get(flags);
        if (intact && (flags & kMetaFlagCleanClose)) report.clean_close = true;
        break;
      }
      case ChunkKind::CallStacks: {
        std::uint32_t count = 0;
        intact = body.try_get(count);
        for (std::uint32_t i = 0; intact && i < count; ++i) {
          std::uint64_t id = 0;
          std::uint32_t depth = 0;
          intact = body.try_get(id) && body.try_get(depth) &&
                   depth <= kMaxCallStackDepth;
          if (!intact) break;
          std::vector<std::uint64_t> pcs(depth);
          for (std::uint32_t f = 0; intact && f < depth; ++f) {
            intact = body.try_get(pcs[f]);
          }
          if (intact) trace.set_call_stack(id, std::move(pcs));
        }
        break;
      }
      case ChunkKind::FrameSymbols: {
        std::uint32_t count = 0;
        intact = body.try_get(count);
        for (std::uint32_t i = 0; intact && i < count; ++i) {
          std::uint64_t pc = 0;
          std::string name;
          intact = body.try_get(pc) && body.try_get_string(name);
          if (intact) trace.set_frame_symbol(pc, std::move(name));
        }
        break;
      }
      case ChunkKind::RuntimeWarnings: {
        std::uint32_t count = 0;
        intact = body.try_get(count) && body.remaining() == count * 12ull;
        for (std::uint32_t i = 0; intact && i < count; ++i) {
          RuntimeWarning w;
          intact = body.try_get(w.code) && body.try_get(w.value);
          if (intact && w.code != 0) trace.set_runtime_warning(w.code, w.value);
        }
        break;
      }
      default:
        break;  // unknown kind, CRC was valid: skip silently
    }
    if (intact) {
      ++report.chunks_recovered;
    } else {
      ++report.chunks_dropped;
      report.bytes_dropped += 16 + payload_bytes;
    }
  }
}

}  // namespace

// ---- repair --------------------------------------------------------------

void repair_trace(Trace& trace, SalvageReport& report) {
  // The protocol replay lives in the shared repair engine (validate.cpp)
  // so --strictness=repair and salvage fix traces identically; only the
  // bookkeeping is mapped back onto the salvage report here.
  const RepairSummary summary =
      repair_trace_semantics(trace, util::Strictness::Repair, nullptr);
  report.synthesized_events += summary.synthesized_events;
  report.events_discarded += summary.events_discarded;
  report.threads_repaired += summary.threads_repaired;
}

// ---- entry points --------------------------------------------------------

SalvageResult salvage_trace(std::istream& in) {
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  BufReader reader{bytes.data(), bytes.size()};

  char magic[4];
  std::uint32_t version = 0;
  CLA_CHECK(reader.try_get_bytes(magic, 4) &&
                std::memcmp(magic, kTraceMagic, 4) == 0,
            "not a CLA trace (bad magic)");
  CLA_CHECK(reader.try_get(version) && is_supported_trace_version(version),
            "unsupported trace version " + std::to_string(version));

  SalvageResult out;
  if (version == kTraceVersionLegacy) {
    salvage_v1(reader, out.trace, out.report);
  } else {
    salvage_v2(reader, out.trace, out.report);
  }
  CLA_CHECK(out.report.events_recovered > 0,
            "nothing to salvage: no intact events in trace");
  out.trace.set_dropped_events(out.report.runtime_dropped_events);
  repair_trace(out.trace, out.report);
  return out;
}

SalvageResult salvage_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    const int err = errno;
    throw util::TraceIoError(
        "cannot open trace file: " + path + ": " + std::strerror(err), err);
  }
  return salvage_trace(in);
}

std::string SalvageReport::to_string() const {
  std::ostringstream out;
  out << "salvage: " << events_recovered << " events recovered";
  if (chunks_recovered > 0) out << " (" << chunks_recovered << " chunks)";
  out << '\n';
  if (bytes_dropped > 0 || chunks_dropped > 0) {
    out << "salvage: dropped " << bytes_dropped << " torn/corrupt bytes ("
        << chunks_dropped << " chunks)\n";
  }
  if (events_discarded > 0) {
    out << "salvage: discarded " << events_discarded
        << " protocol-inconsistent events\n";
  }
  if (synthesized_events > 0 || threads_repaired > 0) {
    out << "salvage: synthesized " << synthesized_events << " events to repair "
        << threads_repaired << " threads\n";
  }
  if (runtime_dropped_events > 0) {
    out << "salvage: recorder dropped " << runtime_dropped_events
        << " events at record time\n";
  }
  out << "salvage: recording "
      << (clean_close ? "closed cleanly"
                      : (torn_tail ? "torn mid-write" : "ended without clean close"))
      << '\n';
  return out.str();
}

}  // namespace cla::trace
