#include "cla/trace/trace_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>

#include "cla/util/error.hpp"

namespace cla::trace {

namespace {

template <typename T>
void put(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

void put_string(std::ostream& out, const std::string& s) {
  CLA_CHECK(s.size() <= std::numeric_limits<std::uint32_t>::max(), "name too long");
  put(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
T get(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  CLA_CHECK(in.good(), "trace stream truncated");
  return value;
}

std::string get_string(std::istream& in) {
  const auto len = get<std::uint32_t>(in);
  CLA_CHECK(len <= (1u << 20), "trace name record suspiciously large");
  std::string s(len, '\0');
  in.read(s.data(), len);
  CLA_CHECK(in.good(), "trace stream truncated in name record");
  return s;
}

}  // namespace

void write_trace(const Trace& trace, std::ostream& out) {
  out.write(kTraceMagic, sizeof kTraceMagic);
  put(out, kTraceVersion);
  put(out, static_cast<std::uint32_t>(trace.thread_count()));

  put(out, static_cast<std::uint32_t>(trace.object_names().size()));
  for (const auto& [object, name] : trace.object_names()) {
    put(out, object);
    put_string(out, name);
  }
  put(out, static_cast<std::uint32_t>(trace.thread_names().size()));
  for (const auto& [tid, name] : trace.thread_names()) {
    put(out, tid);
    put_string(out, name);
  }
  for (ThreadId tid = 0; tid < trace.thread_count(); ++tid) {
    const auto events = trace.thread_events(tid);
    put(out, tid);
    put(out, static_cast<std::uint64_t>(events.size()));
    out.write(reinterpret_cast<const char*>(events.data()),
              static_cast<std::streamsize>(events.size() * sizeof(Event)));
  }
  CLA_CHECK(out.good(), "failed writing trace stream");
}

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CLA_CHECK(out.is_open(), "cannot open trace file for writing: " + path);
  write_trace(trace, out);
  out.flush();
  CLA_CHECK(out.good(), "failed writing trace file: " + path);
}

TraceStreamReader::TraceStreamReader(std::istream& in) : in_(&in) {
  char magic[4];
  in.read(magic, sizeof magic);
  CLA_CHECK(in.good() && std::memcmp(magic, kTraceMagic, 4) == 0,
            "not a CLA trace (bad magic)");
  const auto version = get<std::uint32_t>(in);
  CLA_CHECK(version == kTraceVersion,
            "unsupported trace version " + std::to_string(version));
  thread_count_ = get<std::uint32_t>(in);
  CLA_CHECK(thread_count_ <= (1u << 20), "implausible thread count in trace");

  const auto object_names = get<std::uint32_t>(in);
  for (std::uint32_t i = 0; i < object_names; ++i) {
    const auto object = get<ObjectId>(in);
    object_names_[object] = get_string(in);
  }
  const auto thread_names = get<std::uint32_t>(in);
  for (std::uint32_t i = 0; i < thread_names; ++i) {
    const auto tid = get<ThreadId>(in);
    thread_names_[tid] = get_string(in);
  }
}

std::optional<TraceStreamReader::ThreadBlock> TraceStreamReader::next_thread() {
  // Skip whatever the consumer left unread of the current block.
  while (remaining_in_block_ > 0) {
    Event discard[64];
    read_events(discard, 64);
  }
  if (threads_seen_ >= thread_count_) return std::nullopt;
  ++threads_seen_;
  ThreadBlock block;
  block.tid = get<ThreadId>(*in_);
  CLA_CHECK(block.tid <= (1u << 20), "implausible thread id in trace");
  block.event_count = get<std::uint64_t>(*in_);
  remaining_in_block_ = block.event_count;
  return block;
}

std::size_t TraceStreamReader::read_events(Event* buf, std::size_t max) {
  const std::uint64_t now =
      std::min<std::uint64_t>(max, remaining_in_block_);
  if (now == 0) return 0;
  in_->read(reinterpret_cast<char*>(buf),
            static_cast<std::streamsize>(now * sizeof(Event)));
  CLA_CHECK(in_->good(), "trace stream truncated in event block");
  remaining_in_block_ -= now;
  return static_cast<std::size_t>(now);
}

Trace read_trace(std::istream& in) {
  TraceStreamReader reader(in);
  Trace trace;
  for (const auto& [object, name] : reader.object_names()) {
    trace.set_object_name(object, name);
  }
  for (const auto& [tid, name] : reader.thread_names()) {
    trace.set_thread_name(tid, name);
  }
  // Bounded chunks: a corrupted event count fails with a clean truncation
  // error instead of attempting a gigantic up-front allocation.
  constexpr std::size_t kChunk = 1u << 16;
  std::vector<Event> buffer(kChunk);
  while (auto block = reader.next_thread()) {
    if (block->event_count <= (1u << 24)) {
      trace.reserve_thread_events(
          block->tid, static_cast<std::size_t>(block->event_count));
    }
    for (std::size_t n; (n = reader.read_events(buffer.data(), kChunk)) > 0;) {
      trace.append_thread_events(block->tid, {buffer.data(), n});
    }
  }
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CLA_CHECK(in.is_open(), "cannot open trace file: " + path);
  return read_trace(in);
}

}  // namespace cla::trace
