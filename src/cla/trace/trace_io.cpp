#include "cla/trace/trace_io.hpp"

#include <fcntl.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>

#include "cla/trace/varint.hpp"
#include "cla/util/crc32.hpp"
#include "cla/util/error.hpp"
#include "cla/util/faultinject.hpp"

namespace cla::trace {

namespace {

// Bounded per-chunk event slice shared by the v2 and v3 writers: salvage
// after a mid-file tear loses at most this many events of one thread, and
// readers stay bounded.
constexpr std::size_t kEventsPerChunk = 1u << 16;

// ---- fault-tolerant write layer ------------------------------------------

// Retry ladder for transient write errors. Normal mode: ~8 backoffs from
// 0.5ms doubling to 64ms (~250ms worst case per chunk, paid only while
// the disk is full/busy). Teardown (crash spill) mode: one 1ms retry —
// a dying process must not stall inside a signal handler.
constexpr unsigned kMaxTransientRetries = 8;
constexpr unsigned kTeardownRetries = 1;
constexpr std::uint64_t kInitialBackoffNs = 500'000;
constexpr std::uint64_t kMaxBackoffNs = 64'000'000;

// On-disk layout of the in-place region right after the 8-byte preamble:
// a reserved RuntimeWarnings chunk, then a reserved Meta chunk. Appended
// data starts at kFirstAppendOffset.
constexpr std::size_t kChunkHeaderBytes = 16;
constexpr std::size_t kWarnPayloadBytes = 4 + kRuntimeWarningSlots * 12;
constexpr std::uint64_t kWarnChunkOffset = 8;
constexpr std::uint64_t kMetaChunkOffset =
    kWarnChunkOffset + kChunkHeaderBytes + kWarnPayloadBytes;
constexpr std::size_t kMetaPayloadBytes = 12;
constexpr std::uint64_t kFirstAppendOffset =
    kMetaChunkOffset + kChunkHeaderBytes + kMetaPayloadBytes;

// ENOSPC-class conditions worth waiting out; anything else (EBADF, EFBIG,
// a forcibly revoked fd...) is permanent.
bool transient_write_errno(int err) noexcept {
  return err == ENOSPC || err == EAGAIN || err == EWOULDBLOCK ||
         err == EDQUOT || err == EIO;
}

void backoff_sleep(std::uint64_t ns) noexcept {
  struct timespec ts{static_cast<time_t>(ns / 1'000'000'000),
                     static_cast<long>(ns % 1'000'000'000)};
  nanosleep(&ts, nullptr);  // async-signal-safe
}

// Builds a complete chunk image (header + payload) into `out`, which must
// hold kChunkHeaderBytes + payload_len bytes. Used for the in-place
// pwrite chunks, which are small and fixed-size.
void render_chunk(unsigned char* out, ChunkKind kind, const void* payload,
                  std::size_t payload_len) noexcept {
  std::memcpy(out, kChunkMagic, 4);
  const std::uint32_t kind_raw = static_cast<std::uint32_t>(kind);
  const std::uint32_t payload_bytes = static_cast<std::uint32_t>(payload_len);
  const std::uint32_t crc = util::crc32(payload, payload_len);
  std::memcpy(out + 4, &kind_raw, 4);
  std::memcpy(out + 8, &payload_bytes, 4);
  std::memcpy(out + 12, &crc, 4);
  std::memcpy(out + kChunkHeaderBytes, payload, payload_len);
}

void render_warn_payload(unsigned char* out, const RuntimeWarning* entries,
                         std::size_t count) noexcept {
  const std::uint32_t slots = static_cast<std::uint32_t>(kRuntimeWarningSlots);
  std::memset(out, 0, kWarnPayloadBytes);
  std::memcpy(out, &slots, 4);
  for (std::size_t i = 0; i < count && i < kRuntimeWarningSlots; ++i) {
    std::memcpy(out + 4 + i * 12, &entries[i].code, 4);
    std::memcpy(out + 4 + i * 12 + 4, &entries[i].value, 8);
  }
}

template <typename T>
void put(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

void put_string(std::ostream& out, const std::string& s) {
  CLA_CHECK(s.size() <= std::numeric_limits<std::uint32_t>::max(), "name too long");
  put(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
T get(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  CLA_CHECK(in.good(), "trace stream truncated");
  return value;
}

std::string get_string(std::istream& in) {
  const auto len = get<std::uint32_t>(in);
  CLA_CHECK(len <= (1u << 20), "trace name record suspiciously large");
  std::string s(len, '\0');
  in.read(s.data(), len);
  CLA_CHECK(in.good(), "trace stream truncated in name record");
  return s;
}

// ---- v2 chunk helpers ----------------------------------------------------

template <typename T>
void append_raw(std::string& buf, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf.append(reinterpret_cast<const char*>(&value), sizeof value);
}

void append_string(std::string& buf, std::string_view s) {
  CLA_CHECK(s.size() <= std::numeric_limits<std::uint32_t>::max(), "name too long");
  append_raw(buf, static_cast<std::uint32_t>(s.size()));
  buf.append(s.data(), s.size());
}

void put_chunk(std::ostream& out, ChunkKind kind, std::string_view payload) {
  out.write(kChunkMagic, sizeof kChunkMagic);
  put(out, static_cast<std::uint32_t>(kind));
  put(out, static_cast<std::uint32_t>(payload.size()));
  put(out, util::crc32(payload.data(), payload.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

void write_trace_v1(const Trace& trace, std::ostream& out) {
  put(out, static_cast<std::uint32_t>(trace.thread_count()));
  put(out, static_cast<std::uint32_t>(trace.object_names().size()));
  for (const auto& [object, name] : trace.object_names()) {
    put(out, object);
    put_string(out, name);
  }
  put(out, static_cast<std::uint32_t>(trace.thread_names().size()));
  for (const auto& [tid, name] : trace.thread_names()) {
    put(out, tid);
    put_string(out, name);
  }
  for (ThreadId tid = 0; tid < trace.thread_count(); ++tid) {
    const auto events = trace.thread_events(tid);
    put(out, tid);
    put(out, static_cast<std::uint64_t>(events.size()));
    out.write(reinterpret_cast<const char*>(events.data()),
              static_cast<std::streamsize>(events.size() * sizeof(Event)));
  }
}

void write_trace_chunked(const Trace& trace, std::ostream& out,
                         std::uint32_t version) {
  if (!trace.object_names().empty()) {
    std::string payload;
    append_raw(payload, static_cast<std::uint32_t>(trace.object_names().size()));
    for (const auto& [object, name] : trace.object_names()) {
      append_raw(payload, object);
      append_string(payload, name);
    }
    put_chunk(out, ChunkKind::ObjectNames, payload);
  }
  if (!trace.thread_names().empty()) {
    std::string payload;
    append_raw(payload, static_cast<std::uint32_t>(trace.thread_names().size()));
    for (const auto& [tid, name] : trace.thread_names()) {
      append_raw(payload, tid);
      append_string(payload, name);
    }
    put_chunk(out, ChunkKind::ThreadNames, payload);
  }
  if (!trace.call_stacks().empty()) {
    std::string payload;
    append_raw(payload, static_cast<std::uint32_t>(trace.call_stacks().size()));
    for (const auto& [id, pcs] : trace.call_stacks()) {
      append_raw(payload, id);
      append_raw(payload, static_cast<std::uint32_t>(pcs.size()));
      for (const std::uint64_t pc : pcs) append_raw(payload, pc);
    }
    put_chunk(out, ChunkKind::CallStacks, payload);
  }
  if (!trace.frame_symbols().empty()) {
    std::string payload;
    append_raw(payload,
               static_cast<std::uint32_t>(trace.frame_symbols().size()));
    for (const auto& [pc, name] : trace.frame_symbols()) {
      append_raw(payload, pc);
      append_string(payload, name);
    }
    put_chunk(out, ChunkKind::FrameSymbols, payload);
  }
  std::string payload;
  for (ThreadId tid = 0; tid < trace.thread_count(); ++tid) {
    const auto events = trace.thread_events(tid);
    for (std::size_t begin = 0; begin < events.size();
         begin += kEventsPerChunk) {
      const std::size_t n = std::min(kEventsPerChunk, events.size() - begin);
      payload.clear();
      if (version == kTraceVersionV3) {
        encode_events_v3(tid, events.data() + begin, n, payload);
        put_chunk(out, ChunkKind::EventsV3, payload);
      } else {
        payload.reserve(8 + n * sizeof(Event));
        append_raw(payload, tid);
        append_raw(payload, static_cast<std::uint32_t>(n));
        payload.append(reinterpret_cast<const char*>(events.data() + begin),
                       n * sizeof(Event));
        put_chunk(out, ChunkKind::Events, payload);
      }
    }
  }
  if (!trace.runtime_warnings().empty()) {
    std::string warnings;
    append_raw(warnings,
               static_cast<std::uint32_t>(trace.runtime_warnings().size()));
    for (const auto& [code, value] : trace.runtime_warnings()) {
      append_raw(warnings, code);
      append_raw(warnings, value);
    }
    put_chunk(out, ChunkKind::RuntimeWarnings, warnings);
  }
  std::string meta;
  append_raw(meta, trace.dropped_events());
  append_raw(meta, kMetaFlagCleanClose);
  put_chunk(out, ChunkKind::Meta, meta);
}

// Strided v3 field-group decode: one core serves the AoS (stride 32 into
// Event fields) and SoA (stride = element size) callers. memcpy stores
// keep the core alignment-agnostic.
bool decode_events_v3_strided(const void* payload, std::size_t bytes,
                              std::uint32_t count,                      //
                              unsigned char* ts, std::size_t ts_stride,  //
                              unsigned char* object, std::size_t object_stride,
                              unsigned char* arg, std::size_t arg_stride,
                              unsigned char* type, std::size_t type_stride) {
  VarintReader r{static_cast<const unsigned char*>(payload) + 8, bytes - 8, 0};
  std::uint64_t v = 0;
  std::uint64_t prev = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!r.get(v)) return false;
    prev += static_cast<std::uint64_t>(zigzag_decode(v));
    std::memcpy(ts + i * ts_stride, &prev, 8);
  }
  prev = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!r.get(v)) return false;
    prev += static_cast<std::uint64_t>(zigzag_decode(v));
    std::memcpy(object + i * object_stride, &prev, 8);
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!r.get(v)) return false;
    const std::uint64_t raw_arg = v - 1;  // 0 wraps back to kNoArg
    std::memcpy(arg + i * arg_stride, &raw_arg, 8);
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!r.get(v)) return false;
    if (v > std::numeric_limits<std::uint16_t>::max()) return false;
    const std::uint16_t raw_type = static_cast<std::uint16_t>(v);
    std::memcpy(type + i * type_stride, &raw_type, 2);
  }
  return r.remaining() == 0;
}

}  // namespace

// ---- EventsV3 chunk codec ------------------------------------------------

void encode_events_v3(ThreadId tid, const Event* events, std::size_t count,
                      std::string& payload) {
  if (count == 0) return;
  CLA_CHECK(count <= std::numeric_limits<std::uint32_t>::max(),
            "events chunk too large for v3 encoding");
  append_raw(payload, tid);
  append_raw(payload, static_cast<std::uint32_t>(count));
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    put_varint(payload,
               zigzag_encode(static_cast<std::int64_t>(events[i].ts - prev)));
    prev = events[i].ts;
  }
  prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    put_varint(payload, zigzag_encode(
                            static_cast<std::int64_t>(events[i].object - prev)));
    prev = events[i].object;
  }
  for (std::size_t i = 0; i < count; ++i) {
    put_varint(payload, events[i].arg + 1);  // kNoArg wraps to 0
  }
  for (std::size_t i = 0; i < count; ++i) {
    put_varint(payload, static_cast<std::uint64_t>(events[i].type));
  }
}

bool peek_events_v3(const void* payload, std::size_t bytes, ThreadId& tid,
                    std::uint32_t& count) {
  if (bytes < 8) return false;
  const auto* p = static_cast<const unsigned char*>(payload);
  std::memcpy(&tid, p, 4);
  std::memcpy(&count, p + 4, 4);
  if (tid > (1u << 20)) return false;
  // Every event costs at least one varint byte per field group, so a
  // count the payload cannot physically hold is corruption, not a huge
  // allocation request.
  return bytes - 8 >= 4ull * count;
}

bool decode_events_v3(const void* payload, std::size_t bytes, std::uint64_t* ts,
                      ObjectId* object, std::uint64_t* arg,
                      std::uint16_t* type) {
  ThreadId tid = 0;
  std::uint32_t count = 0;
  if (!peek_events_v3(payload, bytes, tid, count)) return false;
  return decode_events_v3_strided(
      payload, bytes, count, reinterpret_cast<unsigned char*>(ts), 8,
      reinterpret_cast<unsigned char*>(object), 8,
      reinterpret_cast<unsigned char*>(arg), 8,
      reinterpret_cast<unsigned char*>(type), 2);
}

bool decode_events_v3(const void* payload, std::size_t bytes, Event* out) {
  ThreadId tid = 0;
  std::uint32_t count = 0;
  if (!peek_events_v3(payload, bytes, tid, count)) return false;
  auto* base = reinterpret_cast<unsigned char*>(out);
  if (!decode_events_v3_strided(payload, bytes, count,              //
                                base + offsetof(Event, ts), sizeof(Event),
                                base + offsetof(Event, object), sizeof(Event),
                                base + offsetof(Event, arg), sizeof(Event),
                                base + offsetof(Event, type), sizeof(Event))) {
    return false;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    out[i].reserved = 0;
    out[i].tid = tid;
  }
  return true;
}

void write_trace(const Trace& trace, std::ostream& out, std::uint32_t version) {
  CLA_CHECK(is_supported_trace_version(version),
            "unsupported trace version " + std::to_string(version));
  out.write(kTraceMagic, sizeof kTraceMagic);
  put(out, version);
  if (version == kTraceVersionLegacy) {
    write_trace_v1(trace, out);
  } else {
    write_trace_chunked(trace, out, version);
  }
  CLA_CHECK(out.good(), "failed writing trace stream");
}

void write_trace_file(const Trace& trace, const std::string& path,
                      std::uint32_t version) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CLA_CHECK(out.is_open(), "cannot open trace file for writing: " + path);
  write_trace(trace, out, version);
  out.flush();
  CLA_CHECK(out.good(), "failed writing trace file: " + path);
}

// ---- ChunkedTraceWriter --------------------------------------------------

ChunkedTraceWriter::ChunkedTraceWriter(const std::string& path,
                                       std::uint32_t version,
                                       std::uint64_t ring_bytes)
    : version_(version), path_(path), ring_bytes_(ring_bytes) {
  CLA_CHECK(version == kTraceVersion || version == kTraceVersionV3,
            "ChunkedTraceWriter needs a chunk-framed version (2 or 3), got " +
                std::to_string(version));
  util::fault::init();  // parse CLA_FAULT_* while getenv is still safe
  if (ring_bytes_ != 0 && ring_bytes_ < kMinRingBytes) {
    ring_bytes_ = kMinRingBytes;
  }
  if (ring_bytes_ != 0) ring_chunks_.reserve(1024);
  if (version_ == kTraceVersionV3) {
    // All allocation happens here, up front: write_events must stay
    // allocation-free to remain async-signal-safe.
    v3_scratch_.reserve(events_v3_max_payload(kEventsPerChunk));
  }
  // Ring mode reads surviving chunks back during compaction, so the fd
  // must be readable too; a plain writer stays write-only.
  const int rw = ring_bytes_ != 0 ? O_RDWR : O_WRONLY;
  fd_ = ::open(path.c_str(), rw | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  CLA_CHECK(fd_ >= 0, "cannot open trace file for writing: " + path + ": " +
                          std::strerror(errno));
  // Preamble plus the reserved in-place chunks (empty RuntimeWarnings,
  // not-clean Meta). Writing them now, while the disk presumably has
  // room, is what lets write_meta()/write_warnings() succeed later even
  // when the disk has filled up: rewriting allocated bytes needs no new
  // blocks.
  unsigned char init[kFirstAppendOffset];
  std::memcpy(init, kTraceMagic, 4);
  std::memcpy(init + 4, &version_, 4);
  unsigned char warn_payload[kWarnPayloadBytes];
  render_warn_payload(warn_payload, nullptr, 0);
  render_chunk(init + kWarnChunkOffset, ChunkKind::RuntimeWarnings,
               warn_payload, sizeof warn_payload);
  unsigned char meta_payload[kMetaPayloadBytes] = {};
  render_chunk(init + kMetaChunkOffset, ChunkKind::Meta, meta_payload,
               sizeof meta_payload);
  if (!robust_pwrite(init, sizeof init, 0) ||
      ::lseek(fd_, static_cast<off_t>(kFirstAppendOffset), SEEK_SET) < 0) {
    failed_.store(true, std::memory_order_relaxed);
  }
}

ChunkedTraceWriter::~ChunkedTraceWriter() { close(); }

bool ChunkedTraceWriter::lock_appends() noexcept {
  // ~4ms bounded spin. Only a fatal-signal handler interrupting the lock
  // holder can spin this out; it then drops its chunk instead of
  // deadlocking (and teardown mode never calls this at all).
  for (int i = 0; i < 4000; ++i) {
    if (!append_busy_.test_and_set(std::memory_order_acquire)) return true;
    backoff_sleep(1'000);
  }
  return false;
}

bool ChunkedTraceWriter::robust_writev(::iovec* iov, int iovcnt,
                                       std::size_t total) {
  const bool teardown = teardown_.load(std::memory_order_relaxed);
  // While degraded (the disk just rejected a full retry ladder) each
  // chunk gets exactly one cheap attempt, so a persistently full disk
  // costs the traced app one failed syscall per chunk, not 250ms of
  // backoff per chunk.
  const unsigned max_retries =
      teardown ? kTeardownRetries
               : (degraded_.load(std::memory_order_relaxed)
                      ? 0
                      : kMaxTransientRetries);
  std::size_t remaining = total;
  unsigned retries = 0;
  std::uint64_t backoff = kInitialBackoffNs;
  while (remaining > 0) {
    const util::fault::WriteFault fault =
        util::fault::enabled() ? util::fault::on_write(remaining)
                               : util::fault::WriteFault{};
    ssize_t wrote;
    if (fault.fail) {
      errno = fault.error;
      wrote = -1;
    } else if (fault.max_bytes < remaining) {
      // Injected short write: submit a clamped iovec copy.
      struct iovec clamped[8];
      int clamped_cnt = 0;
      std::size_t budget = fault.max_bytes;
      for (int i = 0; i < iovcnt && budget > 0 && clamped_cnt < 8; ++i) {
        if (iov[i].iov_len == 0) continue;
        clamped[clamped_cnt] = iov[i];
        if (clamped[clamped_cnt].iov_len > budget)
          clamped[clamped_cnt].iov_len = budget;
        budget -= clamped[clamped_cnt].iov_len;
        ++clamped_cnt;
      }
      wrote = ::writev(fd_, clamped, clamped_cnt);
    } else {
      wrote = ::writev(fd_, iov, iovcnt);
    }
    if (wrote >= 0) {
      remaining -= static_cast<std::size_t>(wrote);
      // Short write: advance the iovec past the consumed bytes and
      // continue immediately (no retry charged).
      std::size_t consumed = static_cast<std::size_t>(wrote);
      for (int i = 0; i < iovcnt && consumed > 0; ++i) {
        const std::size_t take = std::min(consumed, iov[i].iov_len);
        iov[i].iov_base = static_cast<char*>(iov[i].iov_base) + take;
        iov[i].iov_len -= take;
        consumed -= take;
      }
      continue;
    }
    if (errno == EINTR) {
      io_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!transient_write_errno(errno)) {
      failed_.store(true, std::memory_order_relaxed);
      return false;
    }
    if (retries >= max_retries) return false;
    ++retries;
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    backoff_sleep(backoff);
    backoff = std::min(backoff * 2, kMaxBackoffNs);
  }
  return true;
}

bool ChunkedTraceWriter::robust_pwrite(const void* buf, std::size_t len,
                                       std::uint64_t offset) {
  const unsigned max_retries = teardown_.load(std::memory_order_relaxed)
                                   ? kTeardownRetries
                                   : kMaxTransientRetries;
  const char* p = static_cast<const char*>(buf);
  std::size_t remaining = len;
  unsigned retries = 0;
  std::uint64_t backoff = kInitialBackoffNs;
  while (remaining > 0) {
    const ssize_t wrote =
        ::pwrite(fd_, p, remaining, static_cast<off_t>(offset));
    if (wrote >= 0) {
      p += wrote;
      offset += static_cast<std::uint64_t>(wrote);
      remaining -= static_cast<std::size_t>(wrote);
      continue;
    }
    if (errno == EINTR) {
      io_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!transient_write_errno(errno) || retries >= max_retries) return false;
    ++retries;
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    backoff_sleep(backoff);
    backoff = std::min(backoff * 2, kMaxBackoffNs);
  }
  return true;
}

bool ChunkedTraceWriter::write_chunk(ChunkKind kind, const void* head,
                                     std::size_t head_len, const void* body,
                                     std::size_t body_len,
                                     std::size_t event_count) {
  if (fd_ < 0 || failed_.load(std::memory_order_relaxed)) return false;
  const bool teardown = teardown_.load(std::memory_order_relaxed);
  if (!teardown && !lock_appends()) {
    failed_chunks_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  std::uint32_t crc = util::kCrc32Init;
  crc = util::crc32_update(crc, head, head_len);
  crc = util::crc32_update(crc, body, body_len);
  crc = util::crc32_final(crc);

  char header[16];
  std::memcpy(header, kChunkMagic, 4);
  const std::uint32_t kind_raw = static_cast<std::uint32_t>(kind);
  const std::uint32_t payload_bytes =
      static_cast<std::uint32_t>(head_len + body_len);
  std::memcpy(header + 4, &kind_raw, 4);
  std::memcpy(header + 8, &payload_bytes, 4);
  std::memcpy(header + 12, &crc, 4);

  // One writev submission per chunk: concurrent writers (flusher thread
  // vs. crash handler in teardown mode) interleave at chunk granularity,
  // never inside a chunk.
  struct iovec iov[3];
  iov[0] = {header, sizeof header};
  iov[1] = {const_cast<void*>(head), head_len};
  iov[2] = {const_cast<void*>(body), body_len};
  const int iovcnt = body_len > 0 ? 3 : 2;
  const std::size_t total = sizeof header + head_len + body_len;

  const off_t start = teardown ? -1 : ::lseek(fd_, 0, SEEK_CUR);
  const bool ok = robust_writev(iov, iovcnt, total);
  if (ok) {
    degraded_.store(false, std::memory_order_relaxed);
    if (ring_bytes_ != 0 && !teardown && start >= 0) {
      ring_chunks_.push_back({static_cast<std::uint64_t>(start),
                              static_cast<std::uint32_t>(total), kind,
                              static_cast<std::uint32_t>(event_count)});
      append_bytes_ += total;
      maybe_compact();
    }
  } else {
    // Roll the partial chunk back so the file stays structurally valid
    // (CRC-clean chunks only), then drop into counted-drop mode. In
    // teardown mode there is no rollback — a torn final chunk is exactly
    // what salvage's CRC check exists for.
    if (start >= 0 && ::ftruncate(fd_, start) == 0) {
      ::lseek(fd_, start, SEEK_SET);
    }
    degraded_.store(true, std::memory_order_relaxed);
    failed_chunks_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!teardown) append_busy_.clear(std::memory_order_release);
  return ok;
}

bool ChunkedTraceWriter::write_events_raw(ThreadId tid, const Event* events,
                                          std::size_t count) {
  char head[8];
  const std::uint32_t n = static_cast<std::uint32_t>(count);
  std::memcpy(head, &tid, 4);
  std::memcpy(head + 4, &n, 4);
  return write_chunk(ChunkKind::Events, head, sizeof head, events,
                     count * sizeof(Event), count);
}

std::size_t ChunkedTraceWriter::write_events(ThreadId tid, const Event* events,
                                             std::size_t count) {
  std::size_t written = 0;
  for (std::size_t begin = 0; begin < count; begin += kEventsPerChunk) {
    const std::size_t n = std::min(kEventsPerChunk, count - begin);
    // v3 encoding needs the scratch buffer. Try-lock, never block: if a
    // fatal-signal spill races the flusher thread mid-encode, the spill
    // writes a raw v2 Events chunk instead — mixed-kind files are legal.
    bool ok;
    if (version_ == kTraceVersionV3 &&
        !v3_scratch_busy_.test_and_set(std::memory_order_acquire)) {
      v3_scratch_.clear();
      encode_events_v3(tid, events + begin, n, v3_scratch_);
      ok = write_chunk(ChunkKind::EventsV3, v3_scratch_.data(),
                       v3_scratch_.size(), nullptr, 0, n);
      v3_scratch_busy_.clear(std::memory_order_release);
    } else {
      ok = write_events_raw(tid, events + begin, n);
    }
    if (ok) written += n;
  }
  return written;
}

void ChunkedTraceWriter::write_object_name(ObjectId object,
                                           std::string_view name) {
  std::string payload;
  append_raw(payload, std::uint32_t{1});
  append_raw(payload, object);
  append_string(payload, name);
  write_chunk(ChunkKind::ObjectNames, payload.data(), payload.size(), nullptr, 0);
}

void ChunkedTraceWriter::write_thread_name(ThreadId tid, std::string_view name) {
  std::string payload;
  append_raw(payload, std::uint32_t{1});
  append_raw(payload, tid);
  append_string(payload, name);
  write_chunk(ChunkKind::ThreadNames, payload.data(), payload.size(), nullptr, 0);
}

void ChunkedTraceWriter::write_call_stack(std::uint64_t stack_id,
                                          const std::uint64_t* pcs,
                                          std::size_t depth) {
  if (depth > kMaxCallStackDepth) depth = kMaxCallStackDepth;
  std::string payload;
  append_raw(payload, std::uint32_t{1});
  append_raw(payload, stack_id);
  append_raw(payload, static_cast<std::uint32_t>(depth));
  for (std::size_t i = 0; i < depth; ++i) append_raw(payload, pcs[i]);
  write_chunk(ChunkKind::CallStacks, payload.data(), payload.size(), nullptr,
              0);
}

void ChunkedTraceWriter::write_frame_symbol(std::uint64_t pc,
                                            std::string_view name) {
  std::string payload;
  append_raw(payload, std::uint32_t{1});
  append_raw(payload, pc);
  append_string(payload, name);
  write_chunk(ChunkKind::FrameSymbols, payload.data(), payload.size(), nullptr,
              0);
}

void ChunkedTraceWriter::write_meta(std::uint64_t dropped_events,
                                    bool clean_close) {
  if (fd_ < 0) return;
  unsigned char payload[kMetaPayloadBytes];
  const std::uint32_t flags = clean_close ? kMetaFlagCleanClose : 0;
  std::memcpy(payload, &dropped_events, 8);
  std::memcpy(payload + 8, &flags, 4);
  unsigned char chunk[kChunkHeaderBytes + kMetaPayloadBytes];
  render_chunk(chunk, ChunkKind::Meta, payload, sizeof payload);
  robust_pwrite(chunk, sizeof chunk, kMetaChunkOffset);
}

void ChunkedTraceWriter::write_warnings(const RuntimeWarning* entries,
                                        std::size_t count) {
  if (fd_ < 0) return;
  unsigned char payload[kWarnPayloadBytes];
  render_warn_payload(payload, entries, count);
  unsigned char chunk[kChunkHeaderBytes + kWarnPayloadBytes];
  render_chunk(chunk, ChunkKind::RuntimeWarnings, payload, sizeof payload);
  robust_pwrite(chunk, sizeof chunk, kWarnChunkOffset);
}

namespace {

// Compaction-local I/O helpers: plain EINTR-restarting loops that fail on
// the first hard error. Compaction is opportunistic — when the disk is
// unhealthy it simply aborts and is retried later — so it does not need
// the appending writers' backoff ladder. Writes still consult the fault
// injector so tests can stage a compaction-time ENOSPC deterministically.
bool full_pread(int fd, void* buf, std::size_t len, std::uint64_t offset) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t got = ::pread(fd, p, len, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // shorter file than the chunk records say
    p += got;
    offset += static_cast<std::uint64_t>(got);
    len -= static_cast<std::size_t>(got);
  }
  return true;
}

bool full_write(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const util::fault::WriteFault fault =
        util::fault::enabled() ? util::fault::on_write(len)
                               : util::fault::WriteFault{};
    if (fault.fail) {
      errno = fault.error;
      return false;
    }
    const std::size_t attempt = std::min(len, fault.max_bytes);
    const ssize_t wrote = ::write(fd, p, attempt);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += wrote;
    len -= static_cast<std::size_t>(wrote);
  }
  return true;
}

}  // namespace

void ChunkedTraceWriter::maybe_compact() {
  if (kFirstAppendOffset + append_bytes_ <= ring_bytes_) return;
  if (compact_retry_at_ != 0 && append_bytes_ < compact_retry_at_) return;

  // Choose what survives: every name chunk (small, and required to keep
  // the retained events attributable) plus the newest event chunks up to
  // half the cap — leaving the other half as append headroom so
  // compactions amortize instead of firing on every chunk.
  const std::uint64_t keep_budget = ring_bytes_ / 2;
  std::uint64_t kept_bytes = 0;
  for (const ChunkRecord& c : ring_chunks_) {
    if (c.kind != ChunkKind::Events && c.kind != ChunkKind::EventsV3) {
      kept_bytes += c.bytes;
    }
  }
  std::size_t first_kept_event = ring_chunks_.size();
  bool kept_any_events = false;
  for (std::size_t i = ring_chunks_.size(); i-- > 0;) {
    const ChunkRecord& c = ring_chunks_[i];
    if (c.kind != ChunkKind::Events && c.kind != ChunkKind::EventsV3) continue;
    if (kept_any_events && kept_bytes + c.bytes > keep_budget) break;
    kept_bytes += c.bytes;
    kept_any_events = true;
    first_kept_event = i;
  }
  std::uint64_t retired_events = 0;
  std::uint64_t retired_chunks = 0;
  for (std::size_t i = 0; i < first_kept_event; ++i) {
    const ChunkRecord& c = ring_chunks_[i];
    if (c.kind != ChunkKind::Events && c.kind != ChunkKind::EventsV3) continue;
    retired_events += c.events;
    ++retired_chunks;
  }
  if (!kept_any_events || retired_chunks == 0) {
    // Nothing retirable: either the file holds no complete event chunk at
    // all (degenerate trace — name chunks + the reserved region only) or
    // every event chunk must be kept (names dominate, or one giant
    // chunk). Rewriting would produce an event-free ring file and retire
    // nothing, so no-op with a counted warning and try again only after
    // meaningful growth so a stuck ring does not thrash.
    ring_compaction_noops_.fetch_add(1, std::memory_order_relaxed);
    compact_retry_at_ = append_bytes_ + ring_bytes_ / 4;
    return;
  }

  const std::string tmp_path = path_ + ".ring";
  // O_RDWR, not O_WRONLY: after dup2 this becomes the writer's fd, and
  // the *next* compaction must be able to pread chunks back out of it.
  const int tmp_fd =
      ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) {
    compact_retry_at_ = append_bytes_ + ring_bytes_ / 4;
    return;
  }
  const auto abort_compaction = [&] {
    ::close(tmp_fd);
    ::unlink(tmp_path.c_str());
    compact_retry_at_ = append_bytes_ + ring_bytes_ / 4;
  };

  // Reserved region first (preamble + in-place warnings/meta), copied
  // verbatim so the latest counters written by write_meta/write_warnings
  // survive the rewrite.
  unsigned char reserved[kFirstAppendOffset];
  if (!full_pread(fd_, reserved, sizeof reserved, 0) ||
      !full_write(tmp_fd, reserved, sizeof reserved)) {
    abort_compaction();
    return;
  }
  std::vector<ChunkRecord> kept;
  kept.reserve(ring_chunks_.size() - retired_chunks);
  std::vector<unsigned char> copy_buf;
  std::uint64_t out_offset = kFirstAppendOffset;
  bool ok = true;
  for (std::size_t i = 0; i < ring_chunks_.size() && ok; ++i) {
    const ChunkRecord& c = ring_chunks_[i];
    const bool is_events =
        c.kind == ChunkKind::Events || c.kind == ChunkKind::EventsV3;
    if (is_events && i < first_kept_event) continue;
    copy_buf.resize(c.bytes);
    ok = full_pread(fd_, copy_buf.data(), c.bytes, c.offset) &&
         full_write(tmp_fd, copy_buf.data(), c.bytes);
    if (ok) {
      ChunkRecord moved = c;
      moved.offset = out_offset;
      out_offset += c.bytes;
      kept.push_back(moved);
    }
  }
  if (!ok || ::fsync(tmp_fd) != 0 ||
      ::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    abort_compaction();
    return;
  }
  // Atomically re-point the writer's fd at the new file. dup2 keeps the
  // fd *number* stable, so a fatal-signal teardown writer racing this
  // swap lands its spill in one file or the other — never in a closed fd.
  if (::dup2(tmp_fd, fd_) < 0) {
    ::close(tmp_fd);
    failed_.store(true, std::memory_order_relaxed);
    return;
  }
  ::close(tmp_fd);
  ring_chunks_ = std::move(kept);
  append_bytes_ = out_offset - kFirstAppendOffset;
  compact_retry_at_ = 0;
  ring_retired_events_.fetch_add(retired_events, std::memory_order_relaxed);
  ring_compactions_.fetch_add(1, std::memory_order_relaxed);
}

void ChunkedTraceWriter::close() noexcept {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

// ---- TraceStreamReader ---------------------------------------------------

TraceStreamReader::TraceStreamReader(std::istream& in) : in_(&in) {
  char magic[4];
  in.read(magic, sizeof magic);
  CLA_CHECK(in.good() && std::memcmp(magic, kTraceMagic, 4) == 0,
            "not a CLA trace (bad magic)");
  version_ = get<std::uint32_t>(in);
  CLA_CHECK(is_supported_trace_version(version_),
            "unsupported trace version " + std::to_string(version_));
  if (version_ != kTraceVersionLegacy) return;  // v2/v3: pure chunk stream

  thread_count_ = get<std::uint32_t>(in);
  CLA_CHECK(thread_count_ <= (1u << 20), "implausible thread count in trace");

  const auto object_names = get<std::uint32_t>(in);
  for (std::uint32_t i = 0; i < object_names; ++i) {
    const auto object = get<ObjectId>(in);
    object_names_[object] = get_string(in);
  }
  const auto thread_names = get<std::uint32_t>(in);
  for (std::uint32_t i = 0; i < thread_names; ++i) {
    const auto tid = get<ThreadId>(in);
    thread_names_[tid] = get_string(in);
  }
}

std::optional<TraceStreamReader::ThreadBlock> TraceStreamReader::next_thread() {
  // Skip whatever the consumer left unread of the current block.
  while (remaining_in_block_ > 0) {
    Event discard[64];
    read_events(discard, 64);
  }
  return version_ == kTraceVersionLegacy ? next_thread_v1() : next_thread_v2();
}

std::optional<TraceStreamReader::ThreadBlock> TraceStreamReader::next_thread_v1() {
  if (threads_seen_ >= thread_count_) return std::nullopt;
  ++threads_seen_;
  ThreadBlock block;
  block.tid = get<ThreadId>(*in_);
  CLA_CHECK(block.tid <= (1u << 20), "implausible thread id in trace");
  block.event_count = get<std::uint64_t>(*in_);
  remaining_in_block_ = block.event_count;
  return block;
}

std::optional<TraceStreamReader::ThreadBlock> TraceStreamReader::next_thread_v2() {
  std::string payload;
  for (;;) {
    char magic[4];
    in_->read(magic, sizeof magic);
    if (in_->eof() && in_->gcount() == 0) {
      // Every clean v2 writer ends with a clean-close Meta chunk, so a
      // stream that merely *stops* — even at a tidy chunk boundary — is a
      // crashed or truncated recording and must not load strictly.
      CLA_CHECK(clean_close_,
                "trace has no clean-close marker (crashed or truncated "
                "recording; use --salvage)");
      return std::nullopt;
    }
    CLA_CHECK(in_->good() && std::memcmp(magic, kChunkMagic, 4) == 0,
              "corrupt trace: bad chunk magic");
    const auto kind = get<std::uint32_t>(*in_);
    const auto payload_bytes = get<std::uint32_t>(*in_);
    const auto crc = get<std::uint32_t>(*in_);
    CLA_CHECK(payload_bytes <= kMaxChunkPayload,
              "corrupt trace: implausible chunk size");
    payload.resize(payload_bytes);
    in_->read(payload.data(), payload_bytes);
    CLA_CHECK(payload_bytes == 0 || in_->good(),
              "trace stream truncated inside chunk");
    CLA_CHECK(util::crc32(payload.data(), payload.size()) == crc,
              "corrupt trace: chunk CRC mismatch");

    const char* p = payload.data();
    const char* end = p + payload.size();
    auto take = [&](void* dst, std::size_t n) {
      CLA_CHECK(static_cast<std::size_t>(end - p) >= n,
                "corrupt trace: chunk payload too short");
      std::memcpy(dst, p, n);
      p += n;
    };
    switch (static_cast<ChunkKind>(kind)) {
      case ChunkKind::ObjectNames: {
        std::uint32_t count;
        take(&count, 4);
        for (std::uint32_t i = 0; i < count; ++i) {
          ObjectId object;
          std::uint32_t len;
          take(&object, 8);
          take(&len, 4);
          CLA_CHECK(len <= (1u << 20), "trace name record suspiciously large");
          std::string name(len, '\0');
          take(name.data(), len);
          object_names_[object] = std::move(name);
        }
        break;
      }
      case ChunkKind::ThreadNames: {
        std::uint32_t count;
        take(&count, 4);
        for (std::uint32_t i = 0; i < count; ++i) {
          ThreadId tid;
          std::uint32_t len;
          take(&tid, 4);
          take(&len, 4);
          CLA_CHECK(len <= (1u << 20), "trace name record suspiciously large");
          std::string name(len, '\0');
          take(name.data(), len);
          thread_names_[tid] = std::move(name);
        }
        break;
      }
      case ChunkKind::Events: {
        ThreadBlock block;
        std::uint32_t count;
        take(&block.tid, 4);
        take(&count, 4);
        CLA_CHECK(block.tid <= (1u << 20), "implausible thread id in trace");
        CLA_CHECK(static_cast<std::size_t>(end - p) == count * sizeof(Event),
                  "corrupt trace: events chunk size mismatch");
        block.event_count = count;
        v2_chunk_.resize(count);
        std::memcpy(v2_chunk_.data(), p, count * sizeof(Event));
        v2_chunk_offset_ = 0;
        remaining_in_block_ = count;
        if (!v2_tids_seen_.contains(block.tid)) {
          v2_tids_seen_[block.tid] = true;
          ++thread_count_;
        }
        return block;
      }
      case ChunkKind::EventsV3: {
        ThreadBlock block;
        std::uint32_t count;
        CLA_CHECK(peek_events_v3(payload.data(), payload.size(), block.tid,
                                 count),
                  "corrupt trace: bad v3 events chunk header");
        block.event_count = count;
        v2_chunk_.resize(count);
        CLA_CHECK(
            decode_events_v3(payload.data(), payload.size(), v2_chunk_.data()),
            "corrupt trace: bad v3 events chunk encoding");
        v2_chunk_offset_ = 0;
        remaining_in_block_ = count;
        if (!v2_tids_seen_.contains(block.tid)) {
          v2_tids_seen_[block.tid] = true;
          ++thread_count_;
        }
        return block;
      }
      case ChunkKind::Meta: {
        std::uint32_t flags;
        take(&dropped_events_, 8);
        take(&flags, 4);
        if ((flags & kMetaFlagCleanClose) != 0) clean_close_ = true;
        break;
      }
      case ChunkKind::RuntimeWarnings: {
        std::uint32_t count;
        take(&count, 4);
        CLA_CHECK(static_cast<std::size_t>(end - p) == count * 12ull,
                  "corrupt trace: runtime-warnings chunk size mismatch");
        for (std::uint32_t i = 0; i < count; ++i) {
          RuntimeWarning w;
          take(&w.code, 4);
          take(&w.value, 8);
          if (w.code == 0) continue;  // empty slot of the reserved chunk
          runtime_warnings_[w.code] = w.value;
        }
        break;
      }
      case ChunkKind::CallStacks: {
        std::uint32_t count;
        take(&count, 4);
        for (std::uint32_t i = 0; i < count; ++i) {
          std::uint64_t id;
          std::uint32_t depth;
          take(&id, 8);
          take(&depth, 4);
          CLA_CHECK(depth <= kMaxCallStackDepth,
                    "corrupt trace: implausible call-stack depth");
          std::vector<std::uint64_t> pcs(depth);
          for (std::uint32_t f = 0; f < depth; ++f) take(&pcs[f], 8);
          call_stacks_[id] = std::move(pcs);
        }
        break;
      }
      case ChunkKind::FrameSymbols: {
        std::uint32_t count;
        take(&count, 4);
        for (std::uint32_t i = 0; i < count; ++i) {
          std::uint64_t pc;
          std::uint32_t len;
          take(&pc, 8);
          take(&len, 4);
          CLA_CHECK(len <= (1u << 20), "trace name record suspiciously large");
          std::string name(len, '\0');
          take(name.data(), len);
          frame_symbols_[pc] = std::move(name);
        }
        break;
      }
      default:
        // Unknown chunk kind from a newer minor writer: skip it.
        break;
    }
  }
}

std::size_t TraceStreamReader::read_events(Event* buf, std::size_t max) {
  const std::uint64_t now = std::min<std::uint64_t>(max, remaining_in_block_);
  if (now == 0) return 0;
  if (version_ == kTraceVersionLegacy) {
    in_->read(reinterpret_cast<char*>(buf),
              static_cast<std::streamsize>(now * sizeof(Event)));
    CLA_CHECK(in_->good(), "trace stream truncated in event block");
  } else {
    std::copy_n(v2_chunk_.begin() + static_cast<std::ptrdiff_t>(v2_chunk_offset_),
                now, buf);
    v2_chunk_offset_ += now;
  }
  remaining_in_block_ -= now;
  return static_cast<std::size_t>(now);
}

Trace read_trace(std::istream& in) {
  TraceStreamReader reader(in);
  Trace trace;
  // Bounded chunks: a corrupted event count fails with a clean truncation
  // error instead of attempting a gigantic up-front allocation.
  constexpr std::size_t kChunk = 1u << 16;
  std::vector<Event> buffer(kChunk);
  while (auto block = reader.next_thread()) {
    if (block->event_count <= (1u << 24)) {
      trace.reserve_thread_events(
          block->tid, static_cast<std::size_t>(block->event_count));
    }
    for (std::size_t n; (n = reader.read_events(buffer.data(), kChunk)) > 0;) {
      trace.append_thread_events(block->tid, {buffer.data(), n});
    }
  }
  // Names apply after the drain: v2 name chunks may follow event chunks.
  for (const auto& [object, name] : reader.object_names()) {
    trace.set_object_name(object, name);
  }
  for (const auto& [tid, name] : reader.thread_names()) {
    trace.set_thread_name(tid, name);
  }
  trace.set_dropped_events(reader.dropped_events());
  for (const auto& [code, value] : reader.runtime_warnings()) {
    trace.set_runtime_warning(code, value);
  }
  for (const auto& [id, pcs] : reader.call_stacks()) {
    trace.set_call_stack(id, pcs);
  }
  for (const auto& [pc, name] : reader.frame_symbols()) {
    trace.set_frame_symbol(pc, name);
  }
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    const int err = errno;
    throw util::TraceIoError(
        "cannot open trace file: " + path + ": " + std::strerror(err), err);
  }
  return read_trace(in);
}

void convert_trace_file(const std::string& in_path,
                        const std::string& out_path, std::uint32_t version) {
  CLA_CHECK(is_supported_trace_version(version),
            "unsupported trace version " + std::to_string(version));
  const Trace trace = read_trace_file(in_path);
  write_trace_file(trace, out_path, version);
}

bool parse_trace_format(std::string_view text, std::uint32_t& version) {
  if (text == "v1" || text == "1") {
    version = kTraceVersionLegacy;
  } else if (text == "v2" || text == "2") {
    version = kTraceVersion;
  } else if (text == "v3" || text == "3") {
    version = kTraceVersionV3;
  } else {
    return false;
  }
  return true;
}

}  // namespace cla::trace
