// Fluent trace construction for tests and documentation examples.
//
// Lets a test script an execution like the paper's Fig. 1 directly in
// timestamps, with the mutex/barrier/condvar event protocol generated
// correctly. All times are plain integers (interpreted as nanoseconds).
#pragma once

#include <string>

#include "cla/trace/trace.hpp"

namespace cla::trace {

class TraceBuilder;

/// Per-thread scripting handle returned by TraceBuilder::thread().
class ThreadScript {
 public:
  /// Thread lifecycle. start() is implicit at construction time for
  /// thread 0; spawned threads record their parent.
  ThreadScript& start(std::uint64_t ts, ThreadId parent = kNoThread);
  ThreadScript& exit(std::uint64_t ts);

  /// Records ThreadCreate of `child` at `ts` (pair with child.start()).
  ThreadScript& create(std::uint64_t ts, ThreadId child);

  /// Records a join of `target` spanning [begin_ts, end_ts].
  ThreadScript& join(ThreadId target, std::uint64_t begin_ts, std::uint64_t end_ts);

  /// Full critical section: acquire at `acquire_ts`, obtain at
  /// `acquired_ts` (contended iff acquired_ts > acquire_ts), release at
  /// `released_ts`.
  ThreadScript& lock(ObjectId mutex, std::uint64_t acquire_ts,
                     std::uint64_t acquired_ts, std::uint64_t released_ts);

  /// Uncontended critical section [ts, released_ts].
  ThreadScript& lock_uncontended(ObjectId mutex, std::uint64_t ts,
                                 std::uint64_t released_ts);

  /// Full critical section whose MutexAcquire carries an acquisition
  /// call-stack id (pair with Trace::set_call_stack on the finished
  /// trace); ids are 1-based, matching the recorder.
  ThreadScript& lock_at(ObjectId mutex, std::uint64_t stack_id,
                        std::uint64_t acquire_ts, std::uint64_t acquired_ts,
                        std::uint64_t released_ts);

  /// Individual mutex events, for tests that need partial protocols.
  ThreadScript& acquire(ObjectId mutex, std::uint64_t ts);
  ThreadScript& acquired(ObjectId mutex, std::uint64_t ts, bool contended);
  ThreadScript& released(ObjectId mutex, std::uint64_t ts);

  /// Barrier wait spanning [arrive_ts, leave_ts]; episode may be provided
  /// or left to the analyzer's per-thread-ordinal inference.
  ThreadScript& barrier(ObjectId barrier, std::uint64_t arrive_ts,
                        std::uint64_t leave_ts, std::uint64_t episode = kNoArg);

  /// Condition-variable wait [begin_ts, end_ts] on `cond` with `mutex`.
  /// Emits the mutex release/re-acquire events the real protocol implies.
  ThreadScript& cond_wait(ObjectId cond, ObjectId mutex, std::uint64_t begin_ts,
                          std::uint64_t end_ts);
  ThreadScript& cond_signal(ObjectId cond, std::uint64_t ts);
  ThreadScript& cond_broadcast(ObjectId cond, std::uint64_t ts);

  ThreadId tid() const noexcept { return tid_; }

 private:
  friend class TraceBuilder;
  ThreadScript(TraceBuilder& builder, ThreadId tid) : builder_(&builder), tid_(tid) {}

  ThreadScript& emit(EventType type, std::uint64_t ts, ObjectId object,
                     std::uint64_t arg = kNoArg);

  TraceBuilder* builder_;
  ThreadId tid_;
};

/// Builds traces event-by-event with protocol sugar. Typical use:
///
///   TraceBuilder b;
///   auto t0 = b.thread(0).start(0);
///   t0.lock_uncontended(L1, 2, 5).exit(30);
///   Trace trace = b.finish();
class TraceBuilder {
 public:
  /// Returns the scripting handle for `tid`, creating the thread if new.
  ThreadScript thread(ThreadId tid);

  void name_object(ObjectId object, std::string name);
  void name_thread(ThreadId tid, std::string name);

  /// Validates and returns the trace; the builder is left empty.
  Trace finish();

  /// Returns the trace without validating (for negative tests).
  Trace finish_unchecked();

 private:
  friend class ThreadScript;
  Trace trace_;
};

}  // namespace cla::trace
