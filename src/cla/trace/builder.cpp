#include "cla/trace/builder.hpp"

#include "cla/util/error.hpp"

namespace cla::trace {

ThreadScript& ThreadScript::emit(EventType type, std::uint64_t ts,
                                 ObjectId object, std::uint64_t arg) {
  builder_->trace_.add(Event{ts, object, arg, type, 0, tid_});
  return *this;
}

ThreadScript& ThreadScript::start(std::uint64_t ts, ThreadId parent) {
  return emit(EventType::ThreadStart, ts,
              parent == kNoThread ? kNoObject : static_cast<ObjectId>(parent));
}

ThreadScript& ThreadScript::exit(std::uint64_t ts) {
  return emit(EventType::ThreadExit, ts, kNoObject);
}

ThreadScript& ThreadScript::create(std::uint64_t ts, ThreadId child) {
  return emit(EventType::ThreadCreate, ts, static_cast<ObjectId>(child));
}

ThreadScript& ThreadScript::join(ThreadId target, std::uint64_t begin_ts,
                                 std::uint64_t end_ts) {
  emit(EventType::JoinBegin, begin_ts, static_cast<ObjectId>(target));
  return emit(EventType::JoinEnd, end_ts, static_cast<ObjectId>(target));
}

ThreadScript& ThreadScript::lock(ObjectId mutex, std::uint64_t acquire_ts,
                                 std::uint64_t acquired_ts,
                                 std::uint64_t released_ts) {
  CLA_CHECK(acquire_ts <= acquired_ts && acquired_ts <= released_ts,
            "lock timestamps must be ordered");
  emit(EventType::MutexAcquire, acquire_ts, mutex);
  emit(EventType::MutexAcquired, acquired_ts, mutex,
       acquired_ts > acquire_ts ? 1 : 0);
  return emit(EventType::MutexReleased, released_ts, mutex);
}

ThreadScript& ThreadScript::lock_uncontended(ObjectId mutex, std::uint64_t ts,
                                             std::uint64_t released_ts) {
  return lock(mutex, ts, ts, released_ts);
}

ThreadScript& ThreadScript::lock_at(ObjectId mutex, std::uint64_t stack_id,
                                    std::uint64_t acquire_ts,
                                    std::uint64_t acquired_ts,
                                    std::uint64_t released_ts) {
  CLA_CHECK(acquire_ts <= acquired_ts && acquired_ts <= released_ts,
            "lock timestamps must be ordered");
  emit(EventType::MutexAcquire, acquire_ts, mutex, stack_id);
  emit(EventType::MutexAcquired, acquired_ts, mutex,
       acquired_ts > acquire_ts ? 1 : 0);
  return emit(EventType::MutexReleased, released_ts, mutex);
}

ThreadScript& ThreadScript::acquire(ObjectId mutex, std::uint64_t ts) {
  return emit(EventType::MutexAcquire, ts, mutex);
}

ThreadScript& ThreadScript::acquired(ObjectId mutex, std::uint64_t ts,
                                     bool contended) {
  return emit(EventType::MutexAcquired, ts, mutex, contended ? 1 : 0);
}

ThreadScript& ThreadScript::released(ObjectId mutex, std::uint64_t ts) {
  return emit(EventType::MutexReleased, ts, mutex);
}

ThreadScript& ThreadScript::barrier(ObjectId barrier_id, std::uint64_t arrive_ts,
                                    std::uint64_t leave_ts, std::uint64_t episode) {
  CLA_CHECK(arrive_ts <= leave_ts, "barrier timestamps must be ordered");
  emit(EventType::BarrierArrive, arrive_ts, barrier_id, episode);
  return emit(EventType::BarrierLeave, leave_ts, barrier_id, episode);
}

ThreadScript& ThreadScript::cond_wait(ObjectId cond, ObjectId mutex,
                                      std::uint64_t begin_ts, std::uint64_t end_ts) {
  CLA_CHECK(begin_ts <= end_ts, "cond wait timestamps must be ordered");
  // cond_wait releases the mutex, sleeps, and re-acquires before returning.
  emit(EventType::MutexReleased, begin_ts, mutex);
  emit(EventType::CondWaitBegin, begin_ts, cond, mutex);
  emit(EventType::CondWaitEnd, end_ts, cond, mutex);
  emit(EventType::MutexAcquire, end_ts, mutex);
  return emit(EventType::MutexAcquired, end_ts, mutex, 0);
}

ThreadScript& ThreadScript::cond_signal(ObjectId cond, std::uint64_t ts) {
  return emit(EventType::CondSignal, ts, cond);
}

ThreadScript& ThreadScript::cond_broadcast(ObjectId cond, std::uint64_t ts) {
  return emit(EventType::CondBroadcast, ts, cond);
}

ThreadScript TraceBuilder::thread(ThreadId tid) { return ThreadScript(*this, tid); }

void TraceBuilder::name_object(ObjectId object, std::string name) {
  trace_.set_object_name(object, std::move(name));
}

void TraceBuilder::name_thread(ThreadId tid, std::string name) {
  trace_.set_thread_name(tid, std::move(name));
}

Trace TraceBuilder::finish() {
  trace_.validate();
  return finish_unchecked();
}

Trace TraceBuilder::finish_unchecked() {
  Trace out = std::move(trace_);
  trace_ = Trace{};
  return out;
}

}  // namespace cla::trace
