// Zero-copy, read-only view of a trace: the analysis stages' input.
//
// The analysis pipeline never mutates events, so it does not need the
// owning AoS container (Trace) — it needs positional access to four
// columns per thread: ts, object, arg, type. TraceView provides exactly
// that through strided column accessors which uniformly describe
//
//   - a borrowed in-memory Trace (AoS, stride = sizeof(Event)),
//   - event arrays mmap()ed straight out of a `.clat` v1/v2 file
//     (AoS over file bytes, no alignment assumed — loads are memcpy),
//   - SoA columns decoded from compact `.clat` v3 chunks
//     (stride = element size).
//
// Lifetime/ownership rules (also DESIGN.md §10): a TraceView owns
// nothing. It stays valid while its backing store lives and is not
// modified — the Trace it borrows, or the MappedTrace that produced it
// (which keeps the file mapping and any decoded columns alive). Paths
// that must mutate (repair, phase clipping) call materialize() to get a
// private Trace copy and drop the view.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "cla/trace/event.hpp"

namespace cla::trace {

class Trace;

/// True when this platform can mmap trace files (the zero-copy load
/// path); false means callers should use the copying stream reader.
bool mmap_supported() noexcept;

/// Strided read-only column. `operator[]` loads via memcpy, so the base
/// pointer may have any alignment (file bytes at arbitrary offsets).
template <typename T>
class Column {
 public:
  Column() = default;
  Column(const void* base, std::size_t stride) noexcept
      : base_(static_cast<const unsigned char*>(base)), stride_(stride) {}

  T operator[](std::size_t i) const noexcept {
    T value;
    std::memcpy(&value, base_ + i * stride_, sizeof value);
    return value;
  }

 private:
  const unsigned char* base_ = nullptr;
  std::size_t stride_ = 0;
};

/// One thread's event stream as four strided columns. Mimics the
/// read-side API of std::span<const Event> (size / operator[] / front /
/// back / iteration) so index/resolve/walk code is storage-agnostic;
/// element access assembles an Event by value. Hot loops that only need
/// one field should use the column accessors (ts_at etc.) instead.
class EventsView {
 public:
  EventsView() = default;

  /// AoS view over `count` tightly packed 32-byte event records starting
  /// at `events` (any alignment — e.g. raw bytes of a mapped file).
  EventsView(const void* events, std::size_t count, ThreadId tid) noexcept
      : ts_(static_cast<const unsigned char*>(events) + offsetof(Event, ts),
            sizeof(Event)),
        object_(static_cast<const unsigned char*>(events) +
                    offsetof(Event, object),
                sizeof(Event)),
        arg_(static_cast<const unsigned char*>(events) + offsetof(Event, arg),
             sizeof(Event)),
        type_(static_cast<const unsigned char*>(events) + offsetof(Event, type),
              sizeof(Event)),
        count_(count),
        tid_(tid) {}

  /// SoA view over four parallel column arrays of length `count`.
  EventsView(const std::uint64_t* ts, const ObjectId* object,
             const std::uint64_t* arg, const std::uint16_t* type,
             std::size_t count, ThreadId tid) noexcept
      : ts_(ts, sizeof *ts),
        object_(object, sizeof *object),
        arg_(arg, sizeof *arg),
        type_(type, sizeof *type),
        count_(count),
        tid_(tid) {}

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  ThreadId tid() const noexcept { return tid_; }

  std::uint64_t ts_at(std::size_t i) const noexcept { return ts_[i]; }
  ObjectId object_at(std::size_t i) const noexcept { return object_[i]; }
  std::uint64_t arg_at(std::size_t i) const noexcept { return arg_[i]; }
  EventType type_at(std::size_t i) const noexcept {
    return static_cast<EventType>(type_[i]);
  }

  Event operator[](std::size_t i) const noexcept {
    return Event{ts_[i], object_[i], arg_[i],
                 static_cast<EventType>(type_[i]), 0, tid_};
  }
  Event front() const noexcept { return (*this)[0]; }
  Event back() const noexcept { return (*this)[count_ - 1]; }

  /// Random-access iterator yielding Event by value (proxy iteration:
  /// `for (const Event& e : view)` binds to a temporary per step).
  class iterator {
   public:
    using value_type = Event;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const EventsView* view, std::size_t i) noexcept
        : view_(view), i_(i) {}

    Event operator*() const noexcept { return (*view_)[i_]; }
    iterator& operator++() noexcept { ++i_; return *this; }
    iterator operator++(int) noexcept { iterator t = *this; ++i_; return t; }
    friend bool operator==(const iterator&, const iterator&) = default;
    friend difference_type operator-(const iterator& a,
                                     const iterator& b) noexcept {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }

   private:
    const EventsView* view_ = nullptr;
    std::size_t i_ = 0;
  };

  iterator begin() const noexcept { return {this, 0}; }
  iterator end() const noexcept { return {this, count_}; }

 private:
  Column<std::uint64_t> ts_;
  Column<ObjectId> object_;
  Column<std::uint64_t> arg_;
  Column<std::uint16_t> type_;
  std::size_t count_ = 0;
  ThreadId tid_ = 0;
};

/// Forward cursor over one thread's event stream, built for chunked and
/// append-aware scans: pass-2 rescans pull bounded index ranges with
/// next(), and incremental analysis re-attaches a saved position to the
/// refreshed view after the backing trace grows, then seek_ts()es to the
/// re-resolution boundary. The cursor borrows its EventsView and never
/// rewinds; it is only as valid as the view it was constructed from, so
/// after an append, rebuild it from the new view at the old position().
class ChunkCursor {
 public:
  /// Half-open index range [begin, end) within the thread's stream.
  struct Range {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    bool empty() const noexcept { return begin == end; }
    std::uint32_t size() const noexcept { return end - begin; }
  };

  ChunkCursor() = default;
  explicit ChunkCursor(const EventsView& events,
                       std::uint32_t start = 0) noexcept
      : events_(&events),
        pos_(std::min<std::uint32_t>(
            start, static_cast<std::uint32_t>(events.size()))) {}

  std::uint32_t position() const noexcept { return pos_; }
  bool done() const noexcept {
    return events_ == nullptr || pos_ >= events_->size();
  }
  std::uint32_t remaining() const noexcept {
    return done() ? 0 : static_cast<std::uint32_t>(events_->size()) - pos_;
  }

  /// Claims the next at-most-`max_events` events, advancing the cursor.
  /// Returns an empty Range at end of stream (until the trace grows and
  /// the cursor is re-attached).
  Range next(std::uint32_t max_events) noexcept {
    const Range r{pos_, pos_ + std::min(max_events, remaining())};
    pos_ = r.end;
    return r;
  }

  /// Advances to the first unconsumed event with ts >= `ts` (binary
  /// search over the monotone ts column; never rewinds). Returns the new
  /// position.
  std::uint32_t seek_ts(std::uint64_t ts) noexcept {
    std::uint32_t lo = pos_;
    auto hi = static_cast<std::uint32_t>(events_ ? events_->size() : 0);
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (events_->ts_at(mid) < ts) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pos_ = std::max(pos_, lo);
    return pos_;
  }

 private:
  const EventsView* events_ = nullptr;
  std::uint32_t pos_ = 0;
};

/// Non-owning, cheaply copyable read-side handle on a whole trace:
/// per-thread EventsViews plus the name tables and recorder metadata.
/// Mirrors the read-only surface of Trace so the analysis stages can
/// consume either storage through one type.
class TraceView {
 public:
  TraceView() = default;

  /// Borrows `trace` (zero-copy, AoS columns). The view is valid while
  /// `trace` outlives it and is not modified.
  explicit TraceView(const Trace& trace);

  std::size_t thread_count() const noexcept { return threads_.size(); }
  const EventsView& thread_events(ThreadId tid) const;

  /// Cursor over `tid`'s stream starting at index `start` (clamped to
  /// the stream size) — the entry point for chunked/append-aware scans.
  ChunkCursor thread_cursor(ThreadId tid, std::uint32_t start = 0) const {
    return ChunkCursor(thread_events(tid), start);
  }

  std::size_t event_count() const noexcept;
  std::uint64_t start_ts() const noexcept;
  std::uint64_t end_ts() const noexcept;

  const std::map<ObjectId, std::string>& object_names() const noexcept {
    return *object_names_;
  }
  const std::map<ThreadId, std::string>& thread_names() const noexcept {
    return *thread_names_;
  }
  std::string object_display_name(ObjectId object,
                                  std::string_view prefix) const;
  std::string thread_display_name(ThreadId tid) const;

  std::uint64_t dropped_events() const noexcept { return dropped_events_; }

  /// Runtime warnings from the producing process (CLA_W_* DiagCode value
  /// -> count), mirroring Trace::runtime_warnings().
  const std::map<std::uint32_t, std::uint64_t>& runtime_warnings()
      const noexcept {
    return *runtime_warnings_;
  }

  /// Acquisition call-stack table (stack id -> pc chain) and frame-symbol
  /// table (pc -> name), mirroring Trace::call_stacks()/frame_symbols().
  /// Empty for traces recorded without callsite capture.
  const std::map<std::uint64_t, std::vector<std::uint64_t>>& call_stacks()
      const noexcept {
    return *call_stacks_;
  }
  const std::map<std::uint64_t, std::string>& frame_symbols() const noexcept {
    return *frame_symbols_;
  }

  /// Deep-copies the viewed events and names into an owning, mutable
  /// Trace (the escape hatch for repair / phase clipping).
  Trace materialize() const;

 private:
  friend class MappedTrace;

  static const std::map<ObjectId, std::string>& empty_object_names() noexcept;
  static const std::map<ThreadId, std::string>& empty_thread_names() noexcept;
  static const std::map<std::uint32_t, std::uint64_t>&
  empty_runtime_warnings() noexcept;
  static const std::map<std::uint64_t, std::vector<std::uint64_t>>&
  empty_call_stacks() noexcept;
  static const std::map<std::uint64_t, std::string>&
  empty_frame_symbols() noexcept;

  std::vector<EventsView> threads_;
  const std::map<ObjectId, std::string>* object_names_ = &empty_object_names();
  const std::map<ThreadId, std::string>* thread_names_ = &empty_thread_names();
  const std::map<std::uint32_t, std::uint64_t>* runtime_warnings_ =
      &empty_runtime_warnings();
  const std::map<std::uint64_t, std::vector<std::uint64_t>>* call_stacks_ =
      &empty_call_stacks();
  const std::map<std::uint64_t, std::string>* frame_symbols_ =
      &empty_frame_symbols();
  std::uint64_t dropped_events_ = 0;
};

/// Owning, mmap-backed `.clat` loader — the zero-copy counterpart of
/// read_trace_file, with identical strictness (bad magic, CRC mismatch,
/// missing clean-close marker and truncation all throw cla::util::Error,
/// so `--salvage` guidance stays consistent across load paths).
///
/// v1/v2 event arrays are viewed directly in the file mapping (a thread
/// split across several v2 chunks is compacted into one owned buffer);
/// v3 chunks are varint-decoded once into owned SoA columns. view() and
/// everything it hands out remain valid exactly as long as this object
/// lives; it is immovable so those interior pointers can never dangle.
class MappedTrace {
 public:
  /// Maps and parses `path`. Throws cla::util::Error on IO errors or
  /// malformed input, and if mmap_supported() is false.
  explicit MappedTrace(const std::string& path);
  ~MappedTrace();

  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;

  const TraceView& view() const noexcept { return view_; }
  std::uint32_t version() const noexcept { return version_; }

  /// Total mapped file size (bench reporting: bytes per event on disk).
  std::size_t file_bytes() const noexcept { return map_size_; }

 private:
  struct Segment;  // one on-disk events chunk belonging to a thread

  void load_v1(const unsigned char* p, std::size_t size);
  void load_chunked(const unsigned char* p, std::size_t size);
  void build_views(const std::vector<std::vector<Segment>>& segments);

  struct SoaColumns {
    std::vector<std::uint64_t> ts;
    std::vector<ObjectId> object;
    std::vector<std::uint64_t> arg;
    std::vector<std::uint16_t> type;
  };

  const unsigned char* map_ = nullptr;
  std::size_t map_size_ = 0;
  std::uint32_t version_ = 0;
  std::vector<SoaColumns> soa_;               // v3-decoded threads
  std::vector<std::vector<Event>> compacted_;  // multi-chunk / mixed threads
  std::map<ObjectId, std::string> object_names_;
  std::map<ThreadId, std::string> thread_names_;
  std::map<std::uint32_t, std::uint64_t> runtime_warnings_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> call_stacks_;
  std::map<std::uint64_t, std::string> frame_symbols_;
  TraceView view_;
};

}  // namespace cla::trace
