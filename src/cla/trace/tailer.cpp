#include "cla/trace/tailer.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "cla/trace/trace_io.hpp"
#include "cla/util/crc32.hpp"
#include "cla/util/faultinject.hpp"

namespace cla::trace {

namespace {

constexpr std::size_t kChunkHeaderBytes = 16;
// Bytes scanned per resync step while hunting for the next chunk magic.
constexpr std::size_t kResyncWindow = 64 * 1024;
// Read-retry ladder for transient errors (EIO, EAGAIN): 4 attempts with
// 1/2/4/8ms backoff. The *poll*-level exponential backoff is the caller's
// job via suggested_backoff_ms(); this ladder only smooths over blips.
constexpr unsigned kMaxReadRetries = 4;
// In-place rewritten chunks (Meta, RuntimeWarnings) are small; anything
// claiming to be one but larger than this is treated as corruption.
constexpr std::size_t kMaxInplacePayload = 4096;

bool transient_read_errno(int err) noexcept {
  return err == EIO || err == EAGAIN || err == EWOULDBLOCK;
}

std::uint64_t monotonic_ns() noexcept {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void backoff_sleep_ms(std::uint64_t ms) noexcept {
  struct timespec ts{static_cast<time_t>(ms / 1000),
                     static_cast<long>(ms % 1000) * 1'000'000};
  ::nanosleep(&ts, nullptr);
}

template <typename T>
bool read_pod(const std::vector<unsigned char>& buf, std::size_t& pos, T& out) {
  if (buf.size() - pos < sizeof(T) || pos > buf.size()) return false;
  std::memcpy(&out, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

TraceTailer::TraceTailer(std::string path)
    : TraceTailer(std::move(path), Options()) {}

TraceTailer::TraceTailer(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  util::fault::init();
  if (options_.backoff_initial_ms == 0) options_.backoff_initial_ms = 1;
  if (options_.backoff_max_ms < options_.backoff_initial_ms) {
    options_.backoff_max_ms = options_.backoff_initial_ms;
  }
}

TraceTailer::~TraceTailer() {
  if (fd_ >= 0) ::close(fd_);
}

TraceTailer::ReadResult TraceTailer::robust_pread(void* buf, std::size_t len,
                                                  std::uint64_t offset,
                                                  std::size_t& got) {
  got = 0;
  char* p = static_cast<char*>(buf);
  unsigned retries = 0;
  std::uint64_t backoff = 1;
  while (got < len) {
    const std::size_t want = len - got;
    const util::fault::ReadFault fault =
        util::fault::enabled() ? util::fault::on_read(want)
                               : util::fault::ReadFault{};
    ssize_t n;
    if (fault.fail) {
      errno = fault.error;
      n = -1;
    } else {
      n = ::pread(fd_, p + got, std::min(want, fault.max_bytes),
                  static_cast<off_t>(offset + got));
    }
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return ReadResult::Short;  // EOF before `len`
    if (errno == EINTR) {
      ++io_retries_;
      continue;
    }
    if (!transient_read_errno(errno) || retries >= kMaxReadRetries) {
      return ReadResult::Failed;
    }
    ++retries;
    ++io_retries_;
    backoff_sleep_ms(backoff);
    backoff = std::min<std::uint64_t>(backoff * 2, 8);
  }
  return ReadResult::Ok;
}

bool TraceTailer::open_file() {
  fd_ = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  return fd_ >= 0;
}

void TraceTailer::reset_for_rotation() {
  consumed_ = 0;
  preamble_ok_ = false;
  version_ = 0;
  clean_close_ = false;
  dropped_events_ = 0;
  runtime_warnings_.clear();
  inplace_offsets_.clear();
  ++generation_;
}

bool TraceTailer::deadline_hit(std::uint64_t start_ns) const {
  if (options_.poll_deadline_ms == 0) return false;
  return monotonic_ns() - start_ns >= options_.poll_deadline_ms * 1'000'000ull;
}

// Applies one CRC-valid chunk to the delta. Returns true when the chunk
// changed anything the caller should report as progress. CRC-valid but
// structurally malformed chunks are ignored (the writer never produces
// them; a fuzzer might).
bool TraceTailer::consume_chunk(std::uint32_t kind,
                                const std::vector<unsigned char>& payload,
                                Delta& delta) {
  std::size_t pos = 0;
  switch (static_cast<ChunkKind>(kind)) {
    case ChunkKind::Events: {
      std::uint32_t tid = 0;
      std::uint32_t count = 0;
      if (!read_pod(payload, pos, tid) || !read_pod(payload, pos, count)) {
        return false;
      }
      if (tid > (1u << 20) ||
          payload.size() - pos != static_cast<std::size_t>(count) * sizeof(Event)) {
        return false;
      }
      if (count == 0) return false;
      event_buf_.resize(count);
      std::memcpy(event_buf_.data(), payload.data() + pos,
                  static_cast<std::size_t>(count) * sizeof(Event));
      delta.chunk.append_thread_events(tid, {event_buf_.data(), count});
      delta.events += count;
      return true;
    }
    case ChunkKind::EventsV3: {
      ThreadId tid = 0;
      std::uint32_t count = 0;
      if (!peek_events_v3(payload.data(), payload.size(), tid, count) ||
          count == 0) {
        return false;
      }
      event_buf_.resize(count);
      if (!decode_events_v3(payload.data(), payload.size(),
                            event_buf_.data())) {
        return false;
      }
      delta.chunk.append_thread_events(tid, {event_buf_.data(), count});
      delta.events += count;
      return true;
    }
    case ChunkKind::ObjectNames: {
      std::uint32_t count = 0;
      if (!read_pod(payload, pos, count) || count > (1u << 20)) return false;
      bool changed = false;
      for (std::uint32_t i = 0; i < count; ++i) {
        ObjectId object = 0;
        std::uint32_t len = 0;
        if (!read_pod(payload, pos, object) || !read_pod(payload, pos, len) ||
            payload.size() - pos < len) {
          return changed;
        }
        delta.chunk.set_object_name(
            object, std::string(reinterpret_cast<const char*>(payload.data()) + pos,
                                len));
        pos += len;
        changed = true;
      }
      return changed;
    }
    case ChunkKind::ThreadNames: {
      std::uint32_t count = 0;
      if (!read_pod(payload, pos, count) || count > (1u << 20)) return false;
      bool changed = false;
      for (std::uint32_t i = 0; i < count; ++i) {
        ThreadId tid = 0;
        std::uint32_t len = 0;
        if (!read_pod(payload, pos, tid) || !read_pod(payload, pos, len) ||
            payload.size() - pos < len) {
          return changed;
        }
        delta.chunk.set_thread_name(
            tid, std::string(reinterpret_cast<const char*>(payload.data()) + pos,
                             len));
        pos += len;
        changed = true;
      }
      return changed;
    }
    case ChunkKind::Meta: {
      std::uint64_t dropped = 0;
      std::uint32_t flags = 0;
      if (!read_pod(payload, pos, dropped) || !read_pod(payload, pos, flags)) {
        return false;
      }
      bool changed = false;
      if (dropped > dropped_events_) {
        delta.dropped_delta += dropped - dropped_events_;
        dropped_events_ = dropped;
        changed = true;
      }
      if ((flags & kMetaFlagCleanClose) != 0 && !clean_close_) {
        clean_close_ = true;
        delta.clean_close = true;
        changed = true;
      }
      return changed;
    }
    case ChunkKind::RuntimeWarnings: {
      std::uint32_t count = 0;
      if (!read_pod(payload, pos, count) || count > 1024) return false;
      bool changed = false;
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t code = 0;
        std::uint64_t value = 0;
        if (!read_pod(payload, pos, code) || !read_pod(payload, pos, value)) {
          return changed;
        }
        if (code == 0) continue;  // empty slot
        auto [it, inserted] = runtime_warnings_.try_emplace(code, value);
        if (!inserted) {
          if (it->second == value) continue;
          it->second = value;
        }
        changed = true;
      }
      return changed;
    }
    default:
      return false;  // unknown chunk kind: skip (forward compatibility)
  }
}

// Re-reads the Meta/RuntimeWarnings chunks the writer rewrites in place
// after we first consumed them. A rewrite torn mid-read fails CRC and is
// skipped — the previous good counters stand until the next poll.
void TraceTailer::refresh_inplace_chunks(Delta& delta, bool& progress) {
  unsigned char header[kChunkHeaderBytes];
  for (const std::uint64_t offset : inplace_offsets_) {
    std::size_t got = 0;
    if (robust_pread(header, sizeof header, offset, got) != ReadResult::Ok) {
      continue;
    }
    if (std::memcmp(header, kChunkMagic, 4) != 0) continue;
    std::uint32_t kind = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t crc = 0;
    std::memcpy(&kind, header + 4, 4);
    std::memcpy(&payload_bytes, header + 8, 4);
    std::memcpy(&crc, header + 12, 4);
    if (kind != static_cast<std::uint32_t>(ChunkKind::Meta) &&
        kind != static_cast<std::uint32_t>(ChunkKind::RuntimeWarnings)) {
      continue;
    }
    if (payload_bytes > kMaxInplacePayload) continue;
    payload_buf_.resize(payload_bytes);
    if (robust_pread(payload_buf_.data(), payload_bytes,
                     offset + kChunkHeaderBytes, got) != ReadResult::Ok) {
      continue;
    }
    if (util::crc32(payload_buf_.data(), payload_bytes) != crc) continue;
    if (consume_chunk(kind, payload_buf_, delta)) progress = true;
  }
}

TraceTailer::PollStatus TraceTailer::poll(Delta& delta) {
  delta = Delta{};
  const std::uint64_t start_ns = monotonic_ns();
  const auto finish = [&](PollStatus status) {
    if (status == PollStatus::Idle) {
      if (idle_polls_ < 31) ++idle_polls_;
    } else {
      idle_polls_ = 0;
    }
    delta.runtime_warnings = runtime_warnings_;
    return status;
  };

  // Open (or re-open after rotation). A file that does not exist yet is
  // Idle — always-on monitors routinely start before their writers.
  if (fd_ < 0 && !open_file()) {
    return finish(errno == ENOENT ? PollStatus::Idle : PollStatus::IoError);
  }

  // Rotation / removal detection: compare the path's identity with the
  // fd we are draining.
  struct stat path_st{};
  const bool path_exists = ::stat(path_.c_str(), &path_st) == 0;
  struct stat fd_st{};
  if (::fstat(fd_, &fd_st) != 0) {
    ::close(fd_);
    fd_ = -1;
    return finish(PollStatus::IoError);
  }
  if (path_exists && (path_st.st_ino != fd_st.st_ino ||
                      path_st.st_dev != fd_st.st_dev)) {
    // Replaced under us (ring compaction rename, log rotation). Restart
    // at the new file on the next poll; the caller resets its analysis.
    ::close(fd_);
    fd_ = -1;
    reset_for_rotation();
    return finish(PollStatus::Rotated);
  }
  const std::uint64_t size = static_cast<std::uint64_t>(fd_st.st_size);
  if (size < consumed_) {
    // Truncated in place (a restarted writer O_TRUNCed the same inode).
    reset_for_rotation();
    return finish(PollStatus::Rotated);
  }

  bool progress = false;

  // Preamble: 8 bytes of magic + version. Fewer bytes = the writer has
  // not finished its first write; wrong bytes = not a trace file.
  if (!preamble_ok_) {
    if (size < 8) return finish(PollStatus::Idle);
    unsigned char preamble[8];
    std::size_t got = 0;
    const ReadResult r = robust_pread(preamble, sizeof preamble, 0, got);
    if (r == ReadResult::Failed) return finish(PollStatus::IoError);
    if (r == ReadResult::Short) return finish(PollStatus::Idle);
    std::uint32_t version = 0;
    std::memcpy(&version, preamble + 4, 4);
    if (std::memcmp(preamble, kTraceMagic, 4) != 0 ||
        !is_supported_trace_version(version) ||
        version == kTraceVersionLegacy) {
      return finish(PollStatus::IoError);  // v1 has no chunks to tail
    }
    version_ = version;
    preamble_ok_ = true;
    consumed_ = 8;
  }

  refresh_inplace_chunks(delta, progress);

  // Main loop: consume complete CRC-valid chunks until the tail runs out,
  // turns out to be torn, or the poll deadline hits.
  unsigned char header[kChunkHeaderBytes];
  while (consumed_ + kChunkHeaderBytes <= size) {
    if (deadline_hit(start_ns)) break;
    std::size_t got = 0;
    ReadResult r = robust_pread(header, sizeof header, consumed_, got);
    if (r == ReadResult::Failed) {
      return finish(progress ? PollStatus::Progress : PollStatus::IoError);
    }
    if (r == ReadResult::Short) break;

    bool resync = false;
    std::uint32_t kind = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t crc = 0;
    if (std::memcmp(header, kChunkMagic, 4) != 0) {
      resync = true;
    } else {
      std::memcpy(&kind, header + 4, 4);
      std::memcpy(&payload_bytes, header + 8, 4);
      std::memcpy(&crc, header + 12, 4);
      if (payload_bytes > kMaxChunkPayload) resync = true;
    }

    if (!resync) {
      const std::uint64_t chunk_end =
          consumed_ + kChunkHeaderBytes + payload_bytes;
      if (chunk_end > size) break;  // partial tail: "not yet"
      payload_buf_.resize(payload_bytes);
      r = robust_pread(payload_buf_.data(), payload_bytes,
                       consumed_ + kChunkHeaderBytes, got);
      if (r == ReadResult::Failed) {
        return finish(progress ? PollStatus::Progress : PollStatus::IoError);
      }
      if (r == ReadResult::Short) break;
      if (util::crc32(payload_buf_.data(), payload_bytes) == crc) {
        if (consume_chunk(kind, payload_buf_, delta)) progress = true;
        if ((kind == static_cast<std::uint32_t>(ChunkKind::Meta) ||
             kind == static_cast<std::uint32_t>(ChunkKind::RuntimeWarnings)) &&
            inplace_offsets_.size() < 8 &&
            std::find(inplace_offsets_.begin(), inplace_offsets_.end(),
                      consumed_) == inplace_offsets_.end()) {
          inplace_offsets_.push_back(consumed_);
        }
        consumed_ = chunk_end;
        continue;
      }
      if (chunk_end == size) break;  // torn final chunk: wait for the writer
      resync = true;  // CRC-bad with data behind it: genuine corruption
    }

    // Resync: scan forward for the next chunk magic, counting everything
    // skipped as loss. Bounded per iteration; the loop condition and the
    // deadline keep a pathological file from monopolizing the poll.
    std::uint64_t scan = consumed_ + 1;
    std::uint64_t found = 0;
    while (found == 0 && scan + 4 <= size) {
      if (deadline_hit(start_ns)) break;
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(kResyncWindow, size - scan));
      payload_buf_.resize(want);
      std::size_t scan_got = 0;
      if (robust_pread(payload_buf_.data(), want, scan, scan_got) ==
          ReadResult::Failed) {
        return finish(progress ? PollStatus::Progress : PollStatus::IoError);
      }
      if (scan_got < 4) break;
      for (std::size_t i = 0; i + 4 <= scan_got; ++i) {
        if (std::memcmp(payload_buf_.data() + i, kChunkMagic, 4) == 0) {
          found = scan + i;
          break;
        }
      }
      if (found == 0) scan += scan_got - 3;  // keep a 3-byte overlap
    }
    if (found == 0) {
      // No magic ahead: skip what we scanned and wait for more data.
      const std::uint64_t skipped = std::max(scan, consumed_ + 1) - consumed_;
      delta.skipped_bytes += skipped;
      skipped_total_ += skipped;
      consumed_ += skipped;
      break;
    }
    delta.skipped_bytes += found - consumed_;
    skipped_total_ += found - consumed_;
    consumed_ = found;
  }

  if (progress || delta.skipped_bytes > 0) return finish(PollStatus::Progress);
  if (!path_exists && consumed_ >= size) return finish(PollStatus::Removed);
  return finish(PollStatus::Idle);
}

std::uint32_t TraceTailer::suggested_backoff_ms() const noexcept {
  if (idle_polls_ == 0) return 0;
  const std::uint64_t shifted = static_cast<std::uint64_t>(
                                    options_.backoff_initial_ms)
                                << std::min(idle_polls_ - 1, 20u);
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(shifted, options_.backoff_max_ms));
}

}  // namespace cla::trace
