// Synchronization event model.
//
// Both trace producers — the real pthread instrumentation runtime and the
// deterministic virtual-time simulator — emit streams of these events, one
// per MAGIC() point of the paper's Fig. 4. The analysis module consumes
// them without knowing the source.
#pragma once

#include <cstdint>
#include <string_view>

namespace cla::trace {

/// Thread identifiers are dense indices assigned in registration order;
/// thread 0 is always the initial (main) thread.
using ThreadId = std::uint32_t;

/// Synchronization object identifier. In the real runtime this is the
/// object's address; in the simulator it is a small dense id. Names are
/// attached via Trace::set_object_name.
using ObjectId = std::uint64_t;

/// Sentinel for "no object" / "no thread".
inline constexpr ObjectId kNoObject = ~static_cast<ObjectId>(0);
inline constexpr ThreadId kNoThread = ~static_cast<ThreadId>(0);

/// Event kinds, one per instrumented MAGIC() position (paper Fig. 4) plus
/// thread lifecycle events needed to stitch the critical path together.
enum class EventType : std::uint16_t {
  // Thread lifecycle. ThreadStart.object = parent thread id (kNoObject for
  // the initial thread); ThreadCreate.object = child thread id.
  ThreadStart = 1,
  ThreadExit = 2,
  ThreadCreate = 3,
  JoinBegin = 4,   ///< object = joined thread id
  JoinEnd = 5,     ///< object = joined thread id

  // Mutexes. object = mutex id.
  MutexAcquire = 10,   ///< "acquire the lock": the request is issued
  MutexAcquired = 11,  ///< "obtain the lock": arg = 1 if the request contended
  MutexReleased = 12,  ///< "release the lock"

  // Barriers. object = barrier id; arg = episode (generation) if the
  // producer knows it, kNoArg otherwise (the resolver then infers episodes
  // from per-thread wait ordinals).
  BarrierArrive = 20,
  BarrierLeave = 21,

  // Condition variables. object = condvar id.
  CondWaitBegin = 30,  ///< arg = mutex id released while waiting
  CondWaitEnd = 31,    ///< woken up (mutex re-acquired is traced separately)
  CondSignal = 32,
  CondBroadcast = 33,

  // Optional phase markers (extension): restrict analysis to a region.
  PhaseBegin = 40,
  PhaseEnd = 41,
};

inline constexpr std::uint64_t kNoArg = ~static_cast<std::uint64_t>(0);

/// One traced synchronization event. 32 bytes, trivially copyable; traces
/// are written to disk as flat arrays of these.
struct Event {
  std::uint64_t ts;     ///< timestamp, nanoseconds (virtual or real)
  ObjectId object;      ///< synchronization object (see EventType docs)
  std::uint64_t arg;    ///< type-specific payload (see EventType docs)
  EventType type;
  std::uint16_t reserved = 0;
  ThreadId tid;

  friend bool operator==(const Event&, const Event&) = default;
};

static_assert(sizeof(Event) == 32, "Event must stay 32 bytes (trace format)");

/// Human-readable event type name (for dumps and error messages).
std::string_view to_string(EventType type) noexcept;

/// True for events that mark a thread resuming after a potentially
/// blocking wait (the "segment blocked in the beginning" test of Fig. 2
/// applies at these events).
constexpr bool is_wakeup(EventType type) noexcept {
  switch (type) {
    case EventType::ThreadStart:
    case EventType::JoinEnd:
    case EventType::MutexAcquired:
    case EventType::BarrierLeave:
    case EventType::CondWaitEnd:
      return true;
    default:
      return false;
  }
}

}  // namespace cla::trace
