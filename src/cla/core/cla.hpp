// CLA public facade — one header that exposes the full workflow of the
// paper's tool (Fig. 3):
//
//   1. obtain a trace
//        - run an instrumented workload (cla::workloads / cla::exec),
//        - script a virtual-time execution (cla::sim),
//        - load a .clat file recorded via the LD_PRELOAD interposer
//          (cla::trace::read_trace_file), or
//        - record in-process with cla::rt wrappers;
//   2. analyze it (cla::analyze -> TYPE 1 + TYPE 2 statistics);
//   3. render reports (cla::analysis::render_report / tables / timeline).
#pragma once

#include "cla/analysis/analyzer.hpp"
#include "cla/analysis/report.hpp"
#include "cla/analysis/timeline.hpp"
#include "cla/analysis/model.hpp"
#include "cla/analysis/whatif.hpp"
#include "cla/exec/backend.hpp"
#include "cla/sim/engine.hpp"
#include "cla/trace/builder.hpp"
#include "cla/trace/clip.hpp"
#include "cla/trace/salvage.hpp"
#include "cla/trace/trace.hpp"
#include "cla/trace/trace_io.hpp"
#include "cla/trace/validate.hpp"
#include "cla/util/diagnostics.hpp"
#include "cla/util/guard.hpp"
#include "cla/workloads/workload.hpp"

namespace cla {

/// Library version.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr const char* kVersionString = "1.0.0";

/// DEPRECATED one-shot entry point — use cla::Pipeline. The using-decl
/// is exempted from the warning so including this umbrella stays clean;
/// calling cla::analyze() still warns at the call site.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
using analysis::analyze;
#pragma GCC diagnostic pop
using analysis::AnalysisResult;

/// Consolidated per-stage options aggregate (validate flag + stats /
/// report / execution / load sub-structs). AnalyzeOptions is its
/// historical alias — see README, MIGRATION.
using analysis::Options;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
using analysis::AnalyzeOptions;
#pragma GCC diagnostic pop

/// Staged analysis executor: load -> validate -> index -> resolve ->
/// walk -> stats -> report, with ExecutionPolicy-driven fan-out of the
/// index/stats stages and per-stage self-profiling.
using analysis::ExecutionPolicy;
using analysis::Pipeline;
using analysis::PipelineProfile;
using analysis::Stage;

/// Hardened-analysis surface: structured diagnostics, trace repair
/// policies and resource guards (see DESIGN §9).
using util::DiagCode;
using util::Diagnostic;
using util::DiagnosticSink;
using util::ResourceLimits;
using util::Severity;
using util::Strictness;
using trace::RepairSummary;
using trace::repair_trace_semantics;
using trace::validate_trace;

/// Convenience: run a named workload and analyze its trace in one call.
struct RunAnalysis {
  workloads::WorkloadResult run;
  AnalysisResult analysis;
  analysis::PipelineProfile profile;  ///< per-stage analysis timings
};

RunAnalysis run_and_analyze(const std::string& workload,
                            const workloads::WorkloadConfig& config = {},
                            const Options& options = {});

}  // namespace cla
