#include "cla/core/cla.hpp"

namespace cla {

RunAnalysis run_and_analyze(const std::string& workload,
                            const workloads::WorkloadConfig& config,
                            const Options& options) {
  RunAnalysis out;
  out.run = workloads::run_workload(workload, config);
  analysis::Pipeline pipeline(options);
  pipeline.use_trace(out.run.trace);  // borrow: the trace stays in `out`
  out.analysis = pipeline.take_result();
  out.profile = pipeline.profile();
  return out;
}

}  // namespace cla
