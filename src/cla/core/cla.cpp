#include "cla/core/cla.hpp"

namespace cla {

RunAnalysis run_and_analyze(const std::string& workload,
                            const workloads::WorkloadConfig& config) {
  RunAnalysis out;
  out.run = workloads::run_workload(workload, config);
  out.analysis = analyze(out.run.trace);
  return out;
}

}  // namespace cla
