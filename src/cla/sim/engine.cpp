#include "cla/sim/engine.hpp"

#include <ucontext.h>

#include <algorithm>
#include <map>

#include "cla/util/error.hpp"

namespace cla::sim {

namespace {

using trace::Event;
using trace::EventType;
using trace::kNoArg;
using trace::kNoObject;
using trace::ObjectId;

enum class TaskState { Ready, PendingOp, Blocked, Done };

enum class OpKind {
  None,
  Lock,
  Unlock,
  BarrierWait,
  CondWait,
  CondSignal,
  CondBroadcast,
  Spawn,
  Join,
  Exit,
};

struct PendingOp {
  OpKind kind = OpKind::None;
  ObjectId object = kNoObject;
  ObjectId object2 = kNoObject;          // CondWait's mutex
  TaskId target = trace::kNoThread;      // Join target / Spawn result
  std::function<void(TaskCtx&)> body;    // Spawn body
};

}  // namespace

struct Engine::Impl {
  explicit Impl(Engine& owner, EngineOptions opts)
      : engine(owner), options(opts) {}

  struct Task {
    TaskId tid = 0;
    TaskState state = TaskState::Ready;
    std::uint64_t clock = 0;
    PendingOp op;
    std::function<void(TaskCtx&)> body;
    std::vector<char> stack;
    ucontext_t ctx{};
    bool started = false;  // makecontext done & fiber entered at least once
    std::vector<TaskId> joiners;
    std::exception_ptr error;
    TaskId spawn_result = trace::kNoThread;  // child tid of the last Spawn op
    std::vector<ObjectId> held;              // currently held mutexes
    double compute_factor = 1.0;             // min acceleration among held
  };

  struct Mutex {
    ObjectId id;
    TaskId owner = trace::kNoThread;
    std::deque<TaskId> waiters;
    double accel_factor = 1.0;  // compute() scaling while held
  };

  void refresh_compute_factor(Task& task) {
    double factor = 1.0;
    for (const ObjectId id : task.held) {
      factor = std::min(factor, mutexes.at(id).accel_factor);
    }
    task.compute_factor = factor;
  }

  struct Barrier {
    ObjectId id;
    std::uint32_t participants = 0;
    std::uint32_t generation = 0;
    std::vector<TaskId> arrived;
  };

  struct Cond {
    ObjectId id;
    std::deque<TaskId> waiters;
  };

  Engine& engine;
  EngineOptions options;
  std::vector<std::unique_ptr<Task>> tasks;
  std::map<ObjectId, Mutex> mutexes;
  std::map<ObjectId, Barrier> barriers;
  std::map<ObjectId, Cond> conds;
  trace::Trace trace;
  ObjectId next_object = 1;
  ucontext_t sched_ctx{};
  Task* current = nullptr;
  bool running = false;

  // ---- trace helpers -------------------------------------------------
  void emit(TaskId tid, EventType type, std::uint64_t ts,
            ObjectId object = kNoObject, std::uint64_t arg = kNoArg) {
    trace.add(Event{ts, object, arg, type, 0, tid});
  }

  // ---- fiber plumbing ------------------------------------------------
  static void trampoline();

  Task& make_task(std::function<void(TaskCtx&)> body, std::uint64_t clock) {
    auto task = std::make_unique<Task>();
    task->tid = static_cast<TaskId>(tasks.size());
    task->clock = clock;
    task->body = std::move(body);
    task->stack.resize(options.stack_size);
    tasks.push_back(std::move(task));
    return *tasks.back();
  }

  void resume(Task& task) {
    if (!task.started) {
      task.started = true;
      getcontext(&task.ctx);
      task.ctx.uc_stack.ss_sp = task.stack.data();
      task.ctx.uc_stack.ss_size = task.stack.size();
      task.ctx.uc_link = &sched_ctx;
      makecontext(&task.ctx, reinterpret_cast<void (*)()>(&Impl::trampoline), 0);
    }
    current = &task;
    swapcontext(&sched_ctx, &task.ctx);
    current = nullptr;
  }

  // Called on the task fiber: park with the already-filled pending op.
  void park(Task& task) {
    task.state = TaskState::PendingOp;
    swapcontext(&task.ctx, &sched_ctx);
  }

  void run_current_task() {
    Task& task = *current;
    try {
      TaskCtx ctx(engine, task.tid);
      task.body(ctx);
    } catch (...) {
      task.error = std::current_exception();
    }
    task.op = PendingOp{};
    task.op.kind = OpKind::Exit;
    park(task);
    CLA_ASSERT(false, "resumed a finished task fiber");
  }

  // ---- scheduler -----------------------------------------------------
  Task* pick_next() {
    Task* best = nullptr;
    for (auto& task : tasks) {
      if (task->state != TaskState::Ready && task->state != TaskState::PendingOp)
        continue;
      if (best == nullptr || task->clock < best->clock ||
          (task->clock == best->clock && task->tid < best->tid)) {
        best = task.get();
      }
    }
    return best;
  }

  bool all_done() const {
    return std::all_of(tasks.begin(), tasks.end(), [](const auto& t) {
      return t->state == TaskState::Done;
    });
  }

  void wake(Task& task, std::uint64_t at) {
    task.clock = std::max(task.clock, at + options.wakeup_latency);
    task.state = TaskState::Ready;
  }

  // Lock acquisition path shared by Lock ops and condvar re-acquisition.
  // Returns true if the task now owns the mutex (did not block).
  bool acquire(Task& task, Mutex& mutex, std::uint64_t at) {
    emit(task.tid, EventType::MutexAcquire, at, mutex.id);
    if (mutex.owner == trace::kNoThread) {
      mutex.owner = task.tid;
      task.held.push_back(mutex.id);
      refresh_compute_factor(task);
      emit(task.tid, EventType::MutexAcquired, at, mutex.id, 0);
      return true;
    }
    mutex.waiters.push_back(task.tid);
    task.state = TaskState::Blocked;
    return false;
  }

  void release(Task& task, Mutex& mutex, std::uint64_t at) {
    CLA_CHECK(mutex.owner == task.tid,
              "task " + std::to_string(task.tid) + " unlocked mutex " +
                  std::to_string(mutex.id) + " it does not own");
    emit(task.tid, EventType::MutexReleased, at, mutex.id);
    mutex.owner = trace::kNoThread;
    std::erase(task.held, mutex.id);
    refresh_compute_factor(task);
    if (!mutex.waiters.empty()) {
      const TaskId next = mutex.waiters.front();
      mutex.waiters.pop_front();
      Task& waiter = *tasks[next];
      mutex.owner = next;
      waiter.held.push_back(mutex.id);
      refresh_compute_factor(waiter);
      wake(waiter, at);
      emit(next, EventType::MutexAcquired, waiter.clock, mutex.id, 1);
    }
  }

  void process_op(Task& task) {
    const std::uint64_t at = task.clock;
    PendingOp op = std::move(task.op);
    task.op = PendingOp{};
    switch (op.kind) {
      case OpKind::Lock: {
        Mutex& mutex = find_mutex(op.object);
        if (acquire(task, mutex, at)) task.state = TaskState::Ready;
        break;
      }
      case OpKind::Unlock: {
        release(task, find_mutex(op.object), at);
        task.state = TaskState::Ready;
        break;
      }
      case OpKind::BarrierWait: {
        Barrier& barrier = find_barrier(op.object);
        emit(task.tid, EventType::BarrierArrive, at, barrier.id,
             barrier.generation);
        barrier.arrived.push_back(task.tid);
        if (barrier.arrived.size() == barrier.participants) {
          // `task` arrived last; ops are processed in clock order, so `at`
          // is the episode's maximum arrival time.
          for (const TaskId tid : barrier.arrived) {
            Task& waiter = *tasks[tid];
            if (tid != task.tid) wake(waiter, at);
            else waiter.state = TaskState::Ready;
            emit(tid, EventType::BarrierLeave, waiter.clock, barrier.id,
                 barrier.generation);
          }
          barrier.arrived.clear();
          ++barrier.generation;
        } else {
          task.state = TaskState::Blocked;
        }
        break;
      }
      case OpKind::CondWait: {
        Mutex& mutex = find_mutex(op.object2);
        release(task, mutex, at);
        emit(task.tid, EventType::CondWaitBegin, at, op.object, op.object2);
        Cond& cond = find_cond(op.object);
        cond.waiters.push_back(task.tid);
        task.state = TaskState::Blocked;
        // Remember which mutex to re-acquire on wake-up.
        task.op.object2 = op.object2;
        break;
      }
      case OpKind::CondSignal:
      case OpKind::CondBroadcast: {
        Cond& cond = find_cond(op.object);
        emit(task.tid,
             op.kind == OpKind::CondSignal ? EventType::CondSignal
                                           : EventType::CondBroadcast,
             at, cond.id);
        const std::size_t count =
            op.kind == OpKind::CondSignal ? std::min<std::size_t>(1, cond.waiters.size())
                                          : cond.waiters.size();
        for (std::size_t i = 0; i < count; ++i) {
          const TaskId tid = cond.waiters.front();
          cond.waiters.pop_front();
          Task& waiter = *tasks[tid];
          const ObjectId mutex_id = waiter.op.object2;
          waiter.op = PendingOp{};
          wake(waiter, at);
          emit(tid, EventType::CondWaitEnd, waiter.clock, cond.id, mutex_id);
          // Re-acquire the mutex; may block again (without a CondWait).
          Mutex& mutex = find_mutex(mutex_id);
          if (!acquire(waiter, mutex, waiter.clock)) {
            // stays Blocked in the mutex waiter queue
          }
        }
        task.state = TaskState::Ready;
        break;
      }
      case OpKind::Spawn: {
        Task& child = make_task(std::move(op.body), at);
        emit(task.tid, EventType::ThreadCreate, at,
             static_cast<ObjectId>(child.tid));
        emit(child.tid, EventType::ThreadStart, at,
             static_cast<ObjectId>(task.tid));
        child.state = TaskState::Ready;
        task.spawn_result = child.tid;
        task.state = TaskState::Ready;
        break;
      }
      case OpKind::Join: {
        Task& target = *tasks[op.target];
        emit(task.tid, EventType::JoinBegin, at,
             static_cast<ObjectId>(op.target));
        if (target.state == TaskState::Done) {
          emit(task.tid, EventType::JoinEnd, at,
               static_cast<ObjectId>(op.target));
          task.state = TaskState::Ready;
        } else {
          target.joiners.push_back(task.tid);
          task.state = TaskState::Blocked;
        }
        break;
      }
      case OpKind::Exit: {
        emit(task.tid, EventType::ThreadExit, at);
        task.state = TaskState::Done;
        for (const TaskId tid : task.joiners) {
          Task& joiner = *tasks[tid];
          wake(joiner, at);
          emit(tid, EventType::JoinEnd, joiner.clock,
               static_cast<ObjectId>(task.tid));
        }
        task.joiners.clear();
        break;
      }
      case OpKind::None:
        CLA_ASSERT(false, "empty pending op");
    }
  }

  Mutex& find_mutex(ObjectId id) {
    auto it = mutexes.find(id);
    CLA_CHECK(it != mutexes.end(), "unknown mutex id " + std::to_string(id));
    return it->second;
  }
  Barrier& find_barrier(ObjectId id) {
    auto it = barriers.find(id);
    CLA_CHECK(it != barriers.end(), "unknown barrier id " + std::to_string(id));
    return it->second;
  }
  Cond& find_cond(ObjectId id) {
    auto it = conds.find(id);
    CLA_CHECK(it != conds.end(), "unknown cond id " + std::to_string(id));
    return it->second;
  }
};

namespace {
// The engine runs strictly single-threaded, so a plain global is safe and
// keeps makecontext's no-argument trampoline simple.
Engine::Impl* g_current_impl = nullptr;
}  // namespace

void Engine::Impl::trampoline() {
  CLA_ASSERT(g_current_impl != nullptr, "fiber started without engine");
  g_current_impl->run_current_task();
}

Engine::Engine(EngineOptions options)
    : impl_(std::make_unique<Impl>(*this, options)) {}

Engine::~Engine() = default;

MutexId Engine::create_mutex(std::string name) {
  const ObjectId id = impl_->next_object++;
  impl_->mutexes[id] = Impl::Mutex{id, trace::kNoThread, {}};
  if (!name.empty()) impl_->trace.set_object_name(id, std::move(name));
  return MutexId{id};
}

BarrierId Engine::create_barrier(std::uint32_t participants, std::string name) {
  CLA_CHECK(participants > 0, "barrier needs at least one participant");
  const ObjectId id = impl_->next_object++;
  Impl::Barrier barrier;
  barrier.id = id;
  barrier.participants = participants;
  impl_->barriers[id] = std::move(barrier);
  if (!name.empty()) impl_->trace.set_object_name(id, std::move(name));
  return BarrierId{id};
}

void Engine::accelerate_mutex(MutexId mutex, double factor) {
  CLA_CHECK(factor > 0.0, "acceleration factor must be positive");
  CLA_CHECK(!impl_->running, "accelerate_mutex must precede run()");
  impl_->find_mutex(mutex.id).accel_factor = factor;
}

CondId Engine::create_cond(std::string name) {
  const ObjectId id = impl_->next_object++;
  Impl::Cond cond;
  cond.id = id;
  impl_->conds[id] = std::move(cond);
  if (!name.empty()) impl_->trace.set_object_name(id, std::move(name));
  return CondId{id};
}

void Engine::run(std::function<void(TaskCtx&)> main_body) {
  Impl& impl = *impl_;
  CLA_CHECK(!impl.running, "Engine::run is not reentrant");
  impl.running = true;
  g_current_impl = &impl;

  Impl::Task& main_task = impl.make_task(std::move(main_body), 0);
  impl.emit(main_task.tid, EventType::ThreadStart, 0);
  main_task.state = TaskState::Ready;

  struct Cleanup {
    Impl& impl;
    ~Cleanup() {
      impl.running = false;
      g_current_impl = nullptr;
    }
  } cleanup{impl};

  while (!impl.all_done()) {
    Impl::Task* next = impl.pick_next();
    CLA_CHECK(next != nullptr, "deadlock: tasks blocked with nothing runnable");
    if (next->state == TaskState::PendingOp) {
      impl.process_op(*next);
    } else {
      impl.resume(*next);
    }
  }
  completion_time_ = 0;
  for (const auto& task : impl.tasks) {
    completion_time_ = std::max(completion_time_, task->clock);
  }

  for (const auto& task : impl.tasks) {
    if (task->error) std::rethrow_exception(task->error);
  }
}

trace::Trace Engine::take_trace() {
  trace::Trace out = std::move(impl_->trace);
  impl_->trace = trace::Trace{};
  impl_->tasks.clear();
  for (auto& [id, mutex] : impl_->mutexes) {
    (void)id;
    mutex.owner = trace::kNoThread;
    mutex.waiters.clear();
  }
  for (auto& [id, barrier] : impl_->barriers) {
    (void)id;
    barrier.generation = 0;
    barrier.arrived.clear();
  }
  for (auto& [id, cond] : impl_->conds) {
    (void)id;
    cond.waiters.clear();
  }
  // Re-attach names for reuse? Names moved with the trace; a reused engine
  // should create fresh primitives instead.
  return out;
}

// ---- TaskCtx --------------------------------------------------------

namespace {
Engine::Impl& impl_of(Engine* engine) {
  // TaskCtx only lives inside Engine::run, so g_current_impl is valid and
  // always equals the engine's impl.
  (void)engine;
  CLA_ASSERT(g_current_impl != nullptr, "TaskCtx used outside Engine::run");
  return *g_current_impl;
}
}  // namespace

std::uint64_t TaskCtx::now() const noexcept {
  return g_current_impl == nullptr ? 0 : g_current_impl->tasks[tid_]->clock;
}

void TaskCtx::compute(std::uint64_t ns) {
  auto& task = *impl_of(engine_).tasks[tid_];
  if (task.compute_factor == 1.0) {
    task.clock += ns;
  } else {
    // Accelerated critical section: work inside the held lock is cheaper.
    task.clock += static_cast<std::uint64_t>(
        static_cast<double>(ns) * task.compute_factor + 0.5);
  }
}

void TaskCtx::phase_begin() {
  // Non-blocking: the fiber runs exclusively, so emitting directly into
  // the trace is safe and needs no scheduler round trip.
  auto& impl = impl_of(engine_);
  impl.emit(tid_, EventType::PhaseBegin, impl.tasks[tid_]->clock);
}

void TaskCtx::phase_end() {
  auto& impl = impl_of(engine_);
  impl.emit(tid_, EventType::PhaseEnd, impl.tasks[tid_]->clock);
}

void TaskCtx::lock(MutexId mutex) {
  auto& impl = impl_of(engine_);
  auto& task = *impl.tasks[tid_];
  task.op.kind = OpKind::Lock;
  task.op.object = mutex.id;
  impl.park(task);
}

void TaskCtx::unlock(MutexId mutex) {
  auto& impl = impl_of(engine_);
  auto& task = *impl.tasks[tid_];
  task.op.kind = OpKind::Unlock;
  task.op.object = mutex.id;
  impl.park(task);
}

void TaskCtx::barrier_wait(BarrierId barrier) {
  auto& impl = impl_of(engine_);
  auto& task = *impl.tasks[tid_];
  task.op.kind = OpKind::BarrierWait;
  task.op.object = barrier.id;
  impl.park(task);
}

void TaskCtx::cond_wait(CondId cond, MutexId mutex) {
  auto& impl = impl_of(engine_);
  auto& task = *impl.tasks[tid_];
  task.op.kind = OpKind::CondWait;
  task.op.object = cond.id;
  task.op.object2 = mutex.id;
  impl.park(task);
}

void TaskCtx::cond_signal(CondId cond) {
  auto& impl = impl_of(engine_);
  auto& task = *impl.tasks[tid_];
  task.op.kind = OpKind::CondSignal;
  task.op.object = cond.id;
  impl.park(task);
}

void TaskCtx::cond_broadcast(CondId cond) {
  auto& impl = impl_of(engine_);
  auto& task = *impl.tasks[tid_];
  task.op.kind = OpKind::CondBroadcast;
  task.op.object = cond.id;
  impl.park(task);
}

TaskId TaskCtx::spawn(std::function<void(TaskCtx&)> body) {
  auto& impl = impl_of(engine_);
  auto& task = *impl.tasks[tid_];
  task.op.kind = OpKind::Spawn;
  task.op.body = std::move(body);
  impl.park(task);
  // The scheduler assigned the child tid while this fiber was parked.
  return task.spawn_result;
}

void TaskCtx::join(TaskId target) {
  auto& impl = impl_of(engine_);
  CLA_CHECK(target < impl.tasks.size(), "join of unknown task");
  auto& task = *impl.tasks[tid_];
  task.op.kind = OpKind::Join;
  task.op.target = target;
  impl.park(task);
}

}  // namespace cla::sim
