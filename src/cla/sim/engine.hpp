// Deterministic virtual-time execution engine.
//
// Substitute for the paper's 24-thread POWER7 testbed: tasks are scripted
// in C++ against pthread-equivalent primitives (mutex, barrier, condition
// variable, spawn/join) and executed by a conservative discrete-event
// scheduler. Virtual time only advances through TaskCtx::compute(), and
// synchronization operations are processed in global virtual-time order,
// so every run is bit-reproducible — including 24-"thread" executions on a
// single-core host.
//
// The engine emits exactly the trace::Trace the real instrumentation
// runtime emits, so the analysis module cannot tell the difference.
//
// Implementation: each task is a ucontext fiber; exactly one fiber runs at
// a time and yields to the scheduler at every synchronization operation.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cla/trace/trace.hpp"

namespace cla::sim {

using TaskId = trace::ThreadId;
struct MutexId { trace::ObjectId id; };
struct BarrierId { trace::ObjectId id; };
struct CondId { trace::ObjectId id; };

class Engine;

/// Handle passed to task bodies; every method may switch fibers.
class TaskCtx {
 public:
  /// Advances this task's virtual clock by `ns` nanoseconds of "work".
  void compute(std::uint64_t ns);

  void lock(MutexId mutex);
  void unlock(MutexId mutex);
  void barrier_wait(BarrierId barrier);

  /// Atomically releases `mutex` and waits for a signal; re-acquires the
  /// mutex before returning (pthread_cond_wait semantics, no spurious
  /// wake-ups).
  void cond_wait(CondId cond, MutexId mutex);
  void cond_signal(CondId cond);
  void cond_broadcast(CondId cond);

  /// Spawns a new task that starts at this task's current virtual time.
  TaskId spawn(std::function<void(TaskCtx&)> body);
  void join(TaskId task);

  /// Phase markers: delimit a region of interest (e.g. "the parallel
  /// phase") that cla::trace::clip_to_phase() can later isolate.
  void phase_begin();
  void phase_end();

  TaskId tid() const noexcept { return tid_; }
  std::uint64_t now() const noexcept;  ///< this task's virtual clock

 private:
  friend class Engine;
  TaskCtx(Engine& engine, TaskId tid) : engine_(&engine), tid_(tid) {}
  Engine* engine_;
  TaskId tid_;
};

struct EngineOptions {
  std::size_t stack_size = 256 * 1024;  ///< fiber stack bytes
  /// Extra virtual ns between a release and the blocked waiter resuming
  /// (0 = the idealized hand-off of the paper's Fig. 1 example).
  std::uint64_t wakeup_latency = 0;
};

/// The virtual machine. Create primitives, run a root task, take the trace.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  MutexId create_mutex(std::string name = {});
  BarrierId create_barrier(std::uint32_t participants, std::string name = {});
  CondId create_cond(std::string name = {});

  /// Accelerated critical sections (the paper's §VII future work, after
  /// Suleman et al. [25]): while a task holds `mutex`, its compute() cost
  /// is scaled by `factor` (< 1.0 models shipping the critical section to
  /// a fast core). Profile-guided use: accelerate the locks critical lock
  /// analysis ranks first. Must be called before run().
  void accelerate_mutex(MutexId mutex, double factor);

  /// Runs `main_body` as task 0 until every spawned task finishes.
  /// Rethrows the first exception any task body threw. Throws
  /// cla::util::Error on deadlock (blocked tasks, nothing runnable).
  void run(std::function<void(TaskCtx&)> main_body);

  /// Completion time of the last run() in virtual ns.
  std::uint64_t completion_time() const noexcept { return completion_time_; }

  /// The trace of the last run(). Resets the engine's trace state.
  trace::Trace take_trace();

  /// Implementation type; defined in engine.cpp only (pimpl).
  struct Impl;

 private:
  friend class TaskCtx;

  std::unique_ptr<Impl> impl_;
  std::uint64_t completion_time_ = 0;
};

}  // namespace cla::sim
