file(REMOVE_RECURSE
  "CMakeFiles/cla_exec.dir/pthread_backend.cpp.o"
  "CMakeFiles/cla_exec.dir/pthread_backend.cpp.o.d"
  "CMakeFiles/cla_exec.dir/sim_backend.cpp.o"
  "CMakeFiles/cla_exec.dir/sim_backend.cpp.o.d"
  "libcla_exec.a"
  "libcla_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
