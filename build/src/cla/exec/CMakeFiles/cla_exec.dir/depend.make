# Empty dependencies file for cla_exec.
# This may be replaced when dependencies are built.
