file(REMOVE_RECURSE
  "libcla_exec.a"
)
