file(REMOVE_RECURSE
  "CMakeFiles/cla_trace.dir/builder.cpp.o"
  "CMakeFiles/cla_trace.dir/builder.cpp.o.d"
  "CMakeFiles/cla_trace.dir/clip.cpp.o"
  "CMakeFiles/cla_trace.dir/clip.cpp.o.d"
  "CMakeFiles/cla_trace.dir/trace.cpp.o"
  "CMakeFiles/cla_trace.dir/trace.cpp.o.d"
  "CMakeFiles/cla_trace.dir/trace_io.cpp.o"
  "CMakeFiles/cla_trace.dir/trace_io.cpp.o.d"
  "libcla_trace.a"
  "libcla_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
