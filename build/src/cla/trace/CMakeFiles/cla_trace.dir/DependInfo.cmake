
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cla/trace/builder.cpp" "src/cla/trace/CMakeFiles/cla_trace.dir/builder.cpp.o" "gcc" "src/cla/trace/CMakeFiles/cla_trace.dir/builder.cpp.o.d"
  "/root/repo/src/cla/trace/clip.cpp" "src/cla/trace/CMakeFiles/cla_trace.dir/clip.cpp.o" "gcc" "src/cla/trace/CMakeFiles/cla_trace.dir/clip.cpp.o.d"
  "/root/repo/src/cla/trace/trace.cpp" "src/cla/trace/CMakeFiles/cla_trace.dir/trace.cpp.o" "gcc" "src/cla/trace/CMakeFiles/cla_trace.dir/trace.cpp.o.d"
  "/root/repo/src/cla/trace/trace_io.cpp" "src/cla/trace/CMakeFiles/cla_trace.dir/trace_io.cpp.o" "gcc" "src/cla/trace/CMakeFiles/cla_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cla/util/CMakeFiles/cla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
