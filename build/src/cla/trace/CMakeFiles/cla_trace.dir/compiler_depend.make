# Empty compiler generated dependencies file for cla_trace.
# This may be replaced when dependencies are built.
