file(REMOVE_RECURSE
  "libcla_trace.a"
)
