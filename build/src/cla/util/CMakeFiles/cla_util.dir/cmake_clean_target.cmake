file(REMOVE_RECURSE
  "libcla_util.a"
)
