file(REMOVE_RECURSE
  "CMakeFiles/cla_util.dir/args.cpp.o"
  "CMakeFiles/cla_util.dir/args.cpp.o.d"
  "CMakeFiles/cla_util.dir/clock.cpp.o"
  "CMakeFiles/cla_util.dir/clock.cpp.o.d"
  "CMakeFiles/cla_util.dir/error.cpp.o"
  "CMakeFiles/cla_util.dir/error.cpp.o.d"
  "CMakeFiles/cla_util.dir/stats.cpp.o"
  "CMakeFiles/cla_util.dir/stats.cpp.o.d"
  "CMakeFiles/cla_util.dir/table.cpp.o"
  "CMakeFiles/cla_util.dir/table.cpp.o.d"
  "libcla_util.a"
  "libcla_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
