# Empty compiler generated dependencies file for cla_util.
# This may be replaced when dependencies are built.
