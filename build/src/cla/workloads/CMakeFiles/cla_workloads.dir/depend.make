# Empty dependencies file for cla_workloads.
# This may be replaced when dependencies are built.
