file(REMOVE_RECURSE
  "CMakeFiles/cla_workloads.dir/ldap_like.cpp.o"
  "CMakeFiles/cla_workloads.dir/ldap_like.cpp.o.d"
  "CMakeFiles/cla_workloads.dir/micro.cpp.o"
  "CMakeFiles/cla_workloads.dir/micro.cpp.o.d"
  "CMakeFiles/cla_workloads.dir/radiosity.cpp.o"
  "CMakeFiles/cla_workloads.dir/radiosity.cpp.o.d"
  "CMakeFiles/cla_workloads.dir/raytrace.cpp.o"
  "CMakeFiles/cla_workloads.dir/raytrace.cpp.o.d"
  "CMakeFiles/cla_workloads.dir/tsp.cpp.o"
  "CMakeFiles/cla_workloads.dir/tsp.cpp.o.d"
  "CMakeFiles/cla_workloads.dir/uts.cpp.o"
  "CMakeFiles/cla_workloads.dir/uts.cpp.o.d"
  "CMakeFiles/cla_workloads.dir/volrend.cpp.o"
  "CMakeFiles/cla_workloads.dir/volrend.cpp.o.d"
  "CMakeFiles/cla_workloads.dir/water.cpp.o"
  "CMakeFiles/cla_workloads.dir/water.cpp.o.d"
  "CMakeFiles/cla_workloads.dir/workload.cpp.o"
  "CMakeFiles/cla_workloads.dir/workload.cpp.o.d"
  "libcla_workloads.a"
  "libcla_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
