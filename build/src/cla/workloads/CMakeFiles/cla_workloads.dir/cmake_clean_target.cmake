file(REMOVE_RECURSE
  "libcla_workloads.a"
)
