
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cla/workloads/ldap_like.cpp" "src/cla/workloads/CMakeFiles/cla_workloads.dir/ldap_like.cpp.o" "gcc" "src/cla/workloads/CMakeFiles/cla_workloads.dir/ldap_like.cpp.o.d"
  "/root/repo/src/cla/workloads/micro.cpp" "src/cla/workloads/CMakeFiles/cla_workloads.dir/micro.cpp.o" "gcc" "src/cla/workloads/CMakeFiles/cla_workloads.dir/micro.cpp.o.d"
  "/root/repo/src/cla/workloads/radiosity.cpp" "src/cla/workloads/CMakeFiles/cla_workloads.dir/radiosity.cpp.o" "gcc" "src/cla/workloads/CMakeFiles/cla_workloads.dir/radiosity.cpp.o.d"
  "/root/repo/src/cla/workloads/raytrace.cpp" "src/cla/workloads/CMakeFiles/cla_workloads.dir/raytrace.cpp.o" "gcc" "src/cla/workloads/CMakeFiles/cla_workloads.dir/raytrace.cpp.o.d"
  "/root/repo/src/cla/workloads/tsp.cpp" "src/cla/workloads/CMakeFiles/cla_workloads.dir/tsp.cpp.o" "gcc" "src/cla/workloads/CMakeFiles/cla_workloads.dir/tsp.cpp.o.d"
  "/root/repo/src/cla/workloads/uts.cpp" "src/cla/workloads/CMakeFiles/cla_workloads.dir/uts.cpp.o" "gcc" "src/cla/workloads/CMakeFiles/cla_workloads.dir/uts.cpp.o.d"
  "/root/repo/src/cla/workloads/volrend.cpp" "src/cla/workloads/CMakeFiles/cla_workloads.dir/volrend.cpp.o" "gcc" "src/cla/workloads/CMakeFiles/cla_workloads.dir/volrend.cpp.o.d"
  "/root/repo/src/cla/workloads/water.cpp" "src/cla/workloads/CMakeFiles/cla_workloads.dir/water.cpp.o" "gcc" "src/cla/workloads/CMakeFiles/cla_workloads.dir/water.cpp.o.d"
  "/root/repo/src/cla/workloads/workload.cpp" "src/cla/workloads/CMakeFiles/cla_workloads.dir/workload.cpp.o" "gcc" "src/cla/workloads/CMakeFiles/cla_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cla/exec/CMakeFiles/cla_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/trace/CMakeFiles/cla_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/util/CMakeFiles/cla_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/sim/CMakeFiles/cla_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/runtime/CMakeFiles/cla_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
