# Empty dependencies file for cla_sim.
# This may be replaced when dependencies are built.
