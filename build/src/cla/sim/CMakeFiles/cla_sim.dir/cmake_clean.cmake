file(REMOVE_RECURSE
  "CMakeFiles/cla_sim.dir/engine.cpp.o"
  "CMakeFiles/cla_sim.dir/engine.cpp.o.d"
  "libcla_sim.a"
  "libcla_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
