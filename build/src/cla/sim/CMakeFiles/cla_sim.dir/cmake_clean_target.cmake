file(REMOVE_RECURSE
  "libcla_sim.a"
)
