file(REMOVE_RECURSE
  "libcla_runtime.a"
)
