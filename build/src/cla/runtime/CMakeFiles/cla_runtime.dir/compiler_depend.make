# Empty compiler generated dependencies file for cla_runtime.
# This may be replaced when dependencies are built.
