file(REMOVE_RECURSE
  "CMakeFiles/cla_runtime.dir/hooks.cpp.o"
  "CMakeFiles/cla_runtime.dir/hooks.cpp.o.d"
  "CMakeFiles/cla_runtime.dir/recorder.cpp.o"
  "CMakeFiles/cla_runtime.dir/recorder.cpp.o.d"
  "libcla_runtime.a"
  "libcla_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
