file(REMOVE_RECURSE
  "CMakeFiles/cla_interpose.dir/interpose.cpp.o"
  "CMakeFiles/cla_interpose.dir/interpose.cpp.o.d"
  "CMakeFiles/cla_interpose.dir/recorder.cpp.o"
  "CMakeFiles/cla_interpose.dir/recorder.cpp.o.d"
  "libcla_interpose.pdb"
  "libcla_interpose.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_interpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
