# Empty compiler generated dependencies file for cla_interpose.
# This may be replaced when dependencies are built.
