file(REMOVE_RECURSE
  "libcla_analysis.a"
)
