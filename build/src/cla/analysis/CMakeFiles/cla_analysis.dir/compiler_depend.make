# Empty compiler generated dependencies file for cla_analysis.
# This may be replaced when dependencies are built.
