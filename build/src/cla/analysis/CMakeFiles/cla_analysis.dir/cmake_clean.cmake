file(REMOVE_RECURSE
  "CMakeFiles/cla_analysis.dir/analyzer.cpp.o"
  "CMakeFiles/cla_analysis.dir/analyzer.cpp.o.d"
  "CMakeFiles/cla_analysis.dir/critical_path.cpp.o"
  "CMakeFiles/cla_analysis.dir/critical_path.cpp.o.d"
  "CMakeFiles/cla_analysis.dir/index.cpp.o"
  "CMakeFiles/cla_analysis.dir/index.cpp.o.d"
  "CMakeFiles/cla_analysis.dir/model.cpp.o"
  "CMakeFiles/cla_analysis.dir/model.cpp.o.d"
  "CMakeFiles/cla_analysis.dir/report.cpp.o"
  "CMakeFiles/cla_analysis.dir/report.cpp.o.d"
  "CMakeFiles/cla_analysis.dir/resolver.cpp.o"
  "CMakeFiles/cla_analysis.dir/resolver.cpp.o.d"
  "CMakeFiles/cla_analysis.dir/stats.cpp.o"
  "CMakeFiles/cla_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/cla_analysis.dir/timeline.cpp.o"
  "CMakeFiles/cla_analysis.dir/timeline.cpp.o.d"
  "CMakeFiles/cla_analysis.dir/whatif.cpp.o"
  "CMakeFiles/cla_analysis.dir/whatif.cpp.o.d"
  "libcla_analysis.a"
  "libcla_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
