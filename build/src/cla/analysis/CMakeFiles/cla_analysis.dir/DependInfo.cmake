
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cla/analysis/analyzer.cpp" "src/cla/analysis/CMakeFiles/cla_analysis.dir/analyzer.cpp.o" "gcc" "src/cla/analysis/CMakeFiles/cla_analysis.dir/analyzer.cpp.o.d"
  "/root/repo/src/cla/analysis/critical_path.cpp" "src/cla/analysis/CMakeFiles/cla_analysis.dir/critical_path.cpp.o" "gcc" "src/cla/analysis/CMakeFiles/cla_analysis.dir/critical_path.cpp.o.d"
  "/root/repo/src/cla/analysis/index.cpp" "src/cla/analysis/CMakeFiles/cla_analysis.dir/index.cpp.o" "gcc" "src/cla/analysis/CMakeFiles/cla_analysis.dir/index.cpp.o.d"
  "/root/repo/src/cla/analysis/model.cpp" "src/cla/analysis/CMakeFiles/cla_analysis.dir/model.cpp.o" "gcc" "src/cla/analysis/CMakeFiles/cla_analysis.dir/model.cpp.o.d"
  "/root/repo/src/cla/analysis/report.cpp" "src/cla/analysis/CMakeFiles/cla_analysis.dir/report.cpp.o" "gcc" "src/cla/analysis/CMakeFiles/cla_analysis.dir/report.cpp.o.d"
  "/root/repo/src/cla/analysis/resolver.cpp" "src/cla/analysis/CMakeFiles/cla_analysis.dir/resolver.cpp.o" "gcc" "src/cla/analysis/CMakeFiles/cla_analysis.dir/resolver.cpp.o.d"
  "/root/repo/src/cla/analysis/stats.cpp" "src/cla/analysis/CMakeFiles/cla_analysis.dir/stats.cpp.o" "gcc" "src/cla/analysis/CMakeFiles/cla_analysis.dir/stats.cpp.o.d"
  "/root/repo/src/cla/analysis/timeline.cpp" "src/cla/analysis/CMakeFiles/cla_analysis.dir/timeline.cpp.o" "gcc" "src/cla/analysis/CMakeFiles/cla_analysis.dir/timeline.cpp.o.d"
  "/root/repo/src/cla/analysis/whatif.cpp" "src/cla/analysis/CMakeFiles/cla_analysis.dir/whatif.cpp.o" "gcc" "src/cla/analysis/CMakeFiles/cla_analysis.dir/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cla/trace/CMakeFiles/cla_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/util/CMakeFiles/cla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
