# Empty dependencies file for cla_core.
# This may be replaced when dependencies are built.
