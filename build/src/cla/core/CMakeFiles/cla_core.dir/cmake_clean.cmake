file(REMOVE_RECURSE
  "CMakeFiles/cla_core.dir/cla.cpp.o"
  "CMakeFiles/cla_core.dir/cla.cpp.o.d"
  "libcla_core.a"
  "libcla_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
