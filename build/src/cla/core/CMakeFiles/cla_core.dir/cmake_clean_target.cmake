file(REMOVE_RECURSE
  "libcla_core.a"
)
