# Empty compiler generated dependencies file for interpose_demo_app.
# This may be replaced when dependencies are built.
