file(REMOVE_RECURSE
  "CMakeFiles/interpose_demo_app.dir/runtime/interpose_demo_app.cpp.o"
  "CMakeFiles/interpose_demo_app.dir/runtime/interpose_demo_app.cpp.o.d"
  "interpose_demo_app"
  "interpose_demo_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpose_demo_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
