# Empty compiler generated dependencies file for cla_cli_tests.
# This may be replaced when dependencies are built.
