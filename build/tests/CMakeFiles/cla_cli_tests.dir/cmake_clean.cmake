file(REMOVE_RECURSE
  "CMakeFiles/cla_cli_tests.dir/integration/cli_test.cpp.o"
  "CMakeFiles/cla_cli_tests.dir/integration/cli_test.cpp.o.d"
  "cla_cli_tests"
  "cla_cli_tests.pdb"
  "cla_cli_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_cli_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
