# Empty dependencies file for cla_analysis_tests.
# This may be replaced when dependencies are built.
