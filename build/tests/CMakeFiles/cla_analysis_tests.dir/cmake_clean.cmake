file(REMOVE_RECURSE
  "CMakeFiles/cla_analysis_tests.dir/analysis/critical_path_test.cpp.o"
  "CMakeFiles/cla_analysis_tests.dir/analysis/critical_path_test.cpp.o.d"
  "CMakeFiles/cla_analysis_tests.dir/analysis/fig1_example_test.cpp.o"
  "CMakeFiles/cla_analysis_tests.dir/analysis/fig1_example_test.cpp.o.d"
  "CMakeFiles/cla_analysis_tests.dir/analysis/index_test.cpp.o"
  "CMakeFiles/cla_analysis_tests.dir/analysis/index_test.cpp.o.d"
  "CMakeFiles/cla_analysis_tests.dir/analysis/model_test.cpp.o"
  "CMakeFiles/cla_analysis_tests.dir/analysis/model_test.cpp.o.d"
  "CMakeFiles/cla_analysis_tests.dir/analysis/nesting_test.cpp.o"
  "CMakeFiles/cla_analysis_tests.dir/analysis/nesting_test.cpp.o.d"
  "CMakeFiles/cla_analysis_tests.dir/analysis/report_test.cpp.o"
  "CMakeFiles/cla_analysis_tests.dir/analysis/report_test.cpp.o.d"
  "CMakeFiles/cla_analysis_tests.dir/analysis/resolver_test.cpp.o"
  "CMakeFiles/cla_analysis_tests.dir/analysis/resolver_test.cpp.o.d"
  "CMakeFiles/cla_analysis_tests.dir/analysis/stats_test.cpp.o"
  "CMakeFiles/cla_analysis_tests.dir/analysis/stats_test.cpp.o.d"
  "CMakeFiles/cla_analysis_tests.dir/analysis/timeline_test.cpp.o"
  "CMakeFiles/cla_analysis_tests.dir/analysis/timeline_test.cpp.o.d"
  "CMakeFiles/cla_analysis_tests.dir/analysis/whatif_test.cpp.o"
  "CMakeFiles/cla_analysis_tests.dir/analysis/whatif_test.cpp.o.d"
  "cla_analysis_tests"
  "cla_analysis_tests.pdb"
  "cla_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
