# Empty compiler generated dependencies file for cla_util_tests.
# This may be replaced when dependencies are built.
