file(REMOVE_RECURSE
  "CMakeFiles/cla_util_tests.dir/util/args_test.cpp.o"
  "CMakeFiles/cla_util_tests.dir/util/args_test.cpp.o.d"
  "CMakeFiles/cla_util_tests.dir/util/clock_test.cpp.o"
  "CMakeFiles/cla_util_tests.dir/util/clock_test.cpp.o.d"
  "CMakeFiles/cla_util_tests.dir/util/rng_test.cpp.o"
  "CMakeFiles/cla_util_tests.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/cla_util_tests.dir/util/stats_test.cpp.o"
  "CMakeFiles/cla_util_tests.dir/util/stats_test.cpp.o.d"
  "CMakeFiles/cla_util_tests.dir/util/table_test.cpp.o"
  "CMakeFiles/cla_util_tests.dir/util/table_test.cpp.o.d"
  "cla_util_tests"
  "cla_util_tests.pdb"
  "cla_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
