# Empty compiler generated dependencies file for cla_workloads_tests.
# This may be replaced when dependencies are built.
