file(REMOVE_RECURSE
  "CMakeFiles/cla_workloads_tests.dir/workloads/metamorphic_test.cpp.o"
  "CMakeFiles/cla_workloads_tests.dir/workloads/metamorphic_test.cpp.o.d"
  "CMakeFiles/cla_workloads_tests.dir/workloads/workloads_test.cpp.o"
  "CMakeFiles/cla_workloads_tests.dir/workloads/workloads_test.cpp.o.d"
  "cla_workloads_tests"
  "cla_workloads_tests.pdb"
  "cla_workloads_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_workloads_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
