file(REMOVE_RECURSE
  "CMakeFiles/cla_sim_tests.dir/sim/acceleration_test.cpp.o"
  "CMakeFiles/cla_sim_tests.dir/sim/acceleration_test.cpp.o.d"
  "CMakeFiles/cla_sim_tests.dir/sim/engine_sync_test.cpp.o"
  "CMakeFiles/cla_sim_tests.dir/sim/engine_sync_test.cpp.o.d"
  "CMakeFiles/cla_sim_tests.dir/sim/engine_test.cpp.o"
  "CMakeFiles/cla_sim_tests.dir/sim/engine_test.cpp.o.d"
  "cla_sim_tests"
  "cla_sim_tests.pdb"
  "cla_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
