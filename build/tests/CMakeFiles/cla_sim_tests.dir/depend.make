# Empty dependencies file for cla_sim_tests.
# This may be replaced when dependencies are built.
