file(REMOVE_RECURSE
  "CMakeFiles/cla_runtime_tests.dir/runtime/hooks_test.cpp.o"
  "CMakeFiles/cla_runtime_tests.dir/runtime/hooks_test.cpp.o.d"
  "CMakeFiles/cla_runtime_tests.dir/runtime/recorder_test.cpp.o"
  "CMakeFiles/cla_runtime_tests.dir/runtime/recorder_test.cpp.o.d"
  "cla_runtime_tests"
  "cla_runtime_tests.pdb"
  "cla_runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
