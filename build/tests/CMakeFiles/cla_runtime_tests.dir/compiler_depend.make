# Empty compiler generated dependencies file for cla_runtime_tests.
# This may be replaced when dependencies are built.
