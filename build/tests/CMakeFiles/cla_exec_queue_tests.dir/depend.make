# Empty dependencies file for cla_exec_queue_tests.
# This may be replaced when dependencies are built.
