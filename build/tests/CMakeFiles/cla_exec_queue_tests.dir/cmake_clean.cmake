file(REMOVE_RECURSE
  "CMakeFiles/cla_exec_queue_tests.dir/exec/backend_test.cpp.o"
  "CMakeFiles/cla_exec_queue_tests.dir/exec/backend_test.cpp.o.d"
  "CMakeFiles/cla_exec_queue_tests.dir/queue/queues_test.cpp.o"
  "CMakeFiles/cla_exec_queue_tests.dir/queue/queues_test.cpp.o.d"
  "cla_exec_queue_tests"
  "cla_exec_queue_tests.pdb"
  "cla_exec_queue_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_exec_queue_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
