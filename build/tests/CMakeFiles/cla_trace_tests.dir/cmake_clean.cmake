file(REMOVE_RECURSE
  "CMakeFiles/cla_trace_tests.dir/trace/builder_test.cpp.o"
  "CMakeFiles/cla_trace_tests.dir/trace/builder_test.cpp.o.d"
  "CMakeFiles/cla_trace_tests.dir/trace/clip_test.cpp.o"
  "CMakeFiles/cla_trace_tests.dir/trace/clip_test.cpp.o.d"
  "CMakeFiles/cla_trace_tests.dir/trace/trace_io_test.cpp.o"
  "CMakeFiles/cla_trace_tests.dir/trace/trace_io_test.cpp.o.d"
  "CMakeFiles/cla_trace_tests.dir/trace/trace_test.cpp.o"
  "CMakeFiles/cla_trace_tests.dir/trace/trace_test.cpp.o.d"
  "cla_trace_tests"
  "cla_trace_tests.pdb"
  "cla_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
