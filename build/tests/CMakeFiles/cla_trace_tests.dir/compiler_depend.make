# Empty compiler generated dependencies file for cla_trace_tests.
# This may be replaced when dependencies are built.
