# Empty compiler generated dependencies file for cla_integration_tests.
# This may be replaced when dependencies are built.
