file(REMOVE_RECURSE
  "CMakeFiles/cla_integration_tests.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/cla_integration_tests.dir/integration/pipeline_test.cpp.o.d"
  "CMakeFiles/cla_integration_tests.dir/integration/property_test.cpp.o"
  "CMakeFiles/cla_integration_tests.dir/integration/property_test.cpp.o.d"
  "CMakeFiles/cla_integration_tests.dir/integration/robustness_test.cpp.o"
  "CMakeFiles/cla_integration_tests.dir/integration/robustness_test.cpp.o.d"
  "cla_integration_tests"
  "cla_integration_tests.pdb"
  "cla_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
