file(REMOVE_RECURSE
  "CMakeFiles/cla_interpose_tests.dir/runtime/interpose_test.cpp.o"
  "CMakeFiles/cla_interpose_tests.dir/runtime/interpose_test.cpp.o.d"
  "cla_interpose_tests"
  "cla_interpose_tests.pdb"
  "cla_interpose_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla_interpose_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
