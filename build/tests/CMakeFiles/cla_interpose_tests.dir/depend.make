# Empty dependencies file for cla_interpose_tests.
# This may be replaced when dependencies are built.
