# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cla_util_tests[1]_include.cmake")
include("/root/repo/build/tests/cla_trace_tests[1]_include.cmake")
include("/root/repo/build/tests/cla_analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/cla_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/cla_runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/cla_exec_queue_tests[1]_include.cmake")
include("/root/repo/build/tests/cla_workloads_tests[1]_include.cmake")
include("/root/repo/build/tests/cla_integration_tests[1]_include.cmake")
include("/root/repo/build/tests/cla_cli_tests[1]_include.cmake")
include("/root/repo/build/tests/cla_interpose_tests[1]_include.cmake")
