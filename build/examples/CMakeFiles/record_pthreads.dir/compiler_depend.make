# Empty compiler generated dependencies file for record_pthreads.
# This may be replaced when dependencies are built.
