file(REMOVE_RECURSE
  "CMakeFiles/record_pthreads.dir/record_pthreads.cpp.o"
  "CMakeFiles/record_pthreads.dir/record_pthreads.cpp.o.d"
  "record_pthreads"
  "record_pthreads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_pthreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
