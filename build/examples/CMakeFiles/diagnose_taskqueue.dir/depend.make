# Empty dependencies file for diagnose_taskqueue.
# This may be replaced when dependencies are built.
