file(REMOVE_RECURSE
  "CMakeFiles/diagnose_taskqueue.dir/diagnose_taskqueue.cpp.o"
  "CMakeFiles/diagnose_taskqueue.dir/diagnose_taskqueue.cpp.o.d"
  "diagnose_taskqueue"
  "diagnose_taskqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_taskqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
