# Empty compiler generated dependencies file for bench_tsp_opt.
# This may be replaced when dependencies are built.
