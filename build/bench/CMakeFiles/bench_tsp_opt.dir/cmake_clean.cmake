file(REMOVE_RECURSE
  "CMakeFiles/bench_tsp_opt.dir/bench_tsp_opt.cpp.o"
  "CMakeFiles/bench_tsp_opt.dir/bench_tsp_opt.cpp.o.d"
  "bench_tsp_opt"
  "bench_tsp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tsp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
