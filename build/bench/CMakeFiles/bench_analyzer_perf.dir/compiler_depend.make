# Empty compiler generated dependencies file for bench_analyzer_perf.
# This may be replaced when dependencies are built.
