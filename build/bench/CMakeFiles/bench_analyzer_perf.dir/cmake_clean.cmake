file(REMOVE_RECURSE
  "CMakeFiles/bench_analyzer_perf.dir/bench_analyzer_perf.cpp.o"
  "CMakeFiles/bench_analyzer_perf.dir/bench_analyzer_perf.cpp.o.d"
  "bench_analyzer_perf"
  "bench_analyzer_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analyzer_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
