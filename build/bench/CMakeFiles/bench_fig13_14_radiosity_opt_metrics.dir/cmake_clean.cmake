file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_14_radiosity_opt_metrics.dir/bench_fig13_14_radiosity_opt_metrics.cpp.o"
  "CMakeFiles/bench_fig13_14_radiosity_opt_metrics.dir/bench_fig13_14_radiosity_opt_metrics.cpp.o.d"
  "bench_fig13_14_radiosity_opt_metrics"
  "bench_fig13_14_radiosity_opt_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_14_radiosity_opt_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
