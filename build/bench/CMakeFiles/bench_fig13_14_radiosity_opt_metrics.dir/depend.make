# Empty dependencies file for bench_fig13_14_radiosity_opt_metrics.
# This may be replaced when dependencies are built.
