# Empty dependencies file for bench_fig12_radiosity_opt.
# This may be replaced when dependencies are built.
