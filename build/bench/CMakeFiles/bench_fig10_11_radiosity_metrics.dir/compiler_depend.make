# Empty compiler generated dependencies file for bench_fig10_11_radiosity_metrics.
# This may be replaced when dependencies are built.
