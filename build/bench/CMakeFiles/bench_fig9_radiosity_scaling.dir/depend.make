# Empty dependencies file for bench_fig9_radiosity_scaling.
# This may be replaced when dependencies are built.
