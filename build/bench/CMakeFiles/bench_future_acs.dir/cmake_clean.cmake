file(REMOVE_RECURSE
  "CMakeFiles/bench_future_acs.dir/bench_future_acs.cpp.o"
  "CMakeFiles/bench_future_acs.dir/bench_future_acs.cpp.o.d"
  "bench_future_acs"
  "bench_future_acs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_acs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
