# Empty compiler generated dependencies file for bench_future_acs.
# This may be replaced when dependencies are built.
