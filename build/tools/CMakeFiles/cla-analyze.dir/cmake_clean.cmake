file(REMOVE_RECURSE
  "CMakeFiles/cla-analyze.dir/cla_analyze.cpp.o"
  "CMakeFiles/cla-analyze.dir/cla_analyze.cpp.o.d"
  "cla-analyze"
  "cla-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
