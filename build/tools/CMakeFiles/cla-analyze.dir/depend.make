# Empty dependencies file for cla-analyze.
# This may be replaced when dependencies are built.
