file(REMOVE_RECURSE
  "CMakeFiles/cla-run.dir/cla_run.cpp.o"
  "CMakeFiles/cla-run.dir/cla_run.cpp.o.d"
  "cla-run"
  "cla-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cla-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
