# Empty compiler generated dependencies file for cla-run.
# This may be replaced when dependencies are built.
