
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/cla_run.cpp" "tools/CMakeFiles/cla-run.dir/cla_run.cpp.o" "gcc" "tools/CMakeFiles/cla-run.dir/cla_run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cla/core/CMakeFiles/cla_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/analysis/CMakeFiles/cla_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/workloads/CMakeFiles/cla_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/exec/CMakeFiles/cla_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/sim/CMakeFiles/cla_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/runtime/CMakeFiles/cla_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/trace/CMakeFiles/cla_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cla/util/CMakeFiles/cla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
